// Package selection implements multiple questions selection (§VI): the
// benefit of a question set Q is the expected number of matches inferable
// from its labels (Eq. 15–16), a monotone submodular function; the
// NP-hard budgeted maximization is solved greedily with lazy evaluation
// (Algorithm 3), giving the classic (1−1/e) guarantee. MaxInf and MaxPr,
// the two heuristics Remp is compared against in Figure 5, are provided as
// alternative Strategy implementations.
package selection

import (
	"sort"
	"sync"

	"repro/internal/pair"
)

// Candidate describes one candidate question: its pair, its current match
// probability Pr[m_q], and inferred(q) — the vertex indexes it would
// resolve if labeled as a match (including itself).
type Candidate struct {
	Pair     pair.Pair
	Prob     float64
	Inferred []int
}

// Strategy selects up to mu questions from candidates.
type Strategy interface {
	// Select returns the chosen candidate indexes, highest priority first.
	Select(cands []Candidate, mu int) []int
}

// Pick is one ranked selection: a candidate index plus the score the
// strategy committed it at — the marginal benefit for Greedy, the sort key
// for the heuristics. Within one SelectRanked call scores are
// non-increasing (benefit is submodular; the heuristics sort), which is
// what lets a scheduler merge independent shards' sequences by score.
type Pick struct {
	Index int
	Score float64
}

// Ranked is implemented by strategies whose selection over a disjoint
// union of candidate sets equals the score-ordered merge of the per-set
// selections. All built-in strategies qualify: their scores depend only on
// a candidate and the previously chosen candidates whose Inferred sets
// overlap it, and inferred sets never cross shards. The sharded loop uses
// this to select per shard concurrently and draw the global µ-batch across
// shards by expected benefit.
type Ranked interface {
	Strategy
	// SelectRanked is Select, annotated with commit scores.
	SelectRanked(cands []Candidate, mu int) []Pick
}

// Greedy is Algorithm 3: lazy greedy maximization of benefit(Q).
type Greedy struct{}

// benefitState tracks bp(Q) = Pr[p ∈ inferred(H) | Q] per vertex (Eq. 15)
// so that a marginal gain evaluation is O(|inferred(q)|). bp is a dense
// epoch-stamped slice keyed by vertex index — a stale stamp reads as
// bp = 0 — so gain and add are pure array walks with no hashing, and the
// pooled state is reused across selection calls without clearing.
type benefitState struct {
	bp      []float64
	stamp   []uint32
	epoch   uint32
	touched []int32  // vertices with a live bp entry, in first-touch order
	pq      gainHeap // lazy-greedy priority queue, reused across calls
}

var benefitPool = sync.Pool{New: func() any { return &benefitState{} }}

// getBenefitState returns a pooled state valid for vertex indexes < n.
func getBenefitState(n int) *benefitState {
	s := benefitPool.Get().(*benefitState)
	if len(s.bp) < n {
		s.bp = make([]float64, n)
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
	s.pq = s.pq[:0]
	return s
}

func putBenefitState(s *benefitState) { benefitPool.Put(s) }

// maxVertexIndex sizes the dense state: candidates carry global vertex
// indexes, so the bound is one past the largest index they mention.
func maxVertexIndex(cands []Candidate) int {
	n := 0
	for _, c := range cands {
		for _, p := range c.Inferred {
			if p+1 > n {
				n = p + 1
			}
		}
	}
	return n
}

//remp:hotpath
func (s *benefitState) at(p int) float64 {
	if s.stamp[p] == s.epoch {
		return s.bp[p]
	}
	return 0
}

//remp:hotpath
func (s *benefitState) gain(c Candidate) float64 {
	g := 0.0
	for _, p := range c.Inferred {
		g += c.Prob * (1 - s.at(p))
	}
	return g
}

//remp:hotpath
func (s *benefitState) add(c Candidate) {
	for _, p := range c.Inferred {
		b := s.at(p)
		if s.stamp[p] != s.epoch {
			s.stamp[p] = s.epoch
			s.touched = append(s.touched, int32(p))
		}
		// bp(Q ∪ {q}) = bp(Q) + Pr[m_q](1 − bp(Q)).
		s.bp[p] = b + c.Prob*(1-b)
	}
}

// Select implements Strategy.
func (g Greedy) Select(cands []Candidate, mu int) []int {
	picks := g.SelectRanked(cands, mu)
	out := make([]int, len(picks))
	for i, p := range picks {
		out[i] = p.Index
	}
	return out
}

// SelectRanked implements Ranked: the lazy greedy of Select, returning the
// marginal benefit each question was committed at. The only allocation in
// the steady state is the returned picks: the priority queue lives in the
// pooled benefit state and amortizes across calls like bp/stamp do.
//
//remp:hotpath
func (Greedy) SelectRanked(cands []Candidate, mu int) []Pick {
	if mu <= 0 || len(cands) == 0 {
		return nil
	}
	state := getBenefitState(maxVertexIndex(cands))
	defer putBenefitState(state)
	// Priority queue of (index, cached gain); lazy evaluation re-checks the
	// top element against the current state before committing.
	pq := state.pq
	for i, c := range cands {
		pq = append(pq, gainItem{idx: int32(i), gain: state.gain(c)})
	}
	pq.init()

	var out []Pick
	for len(out) < mu && len(pq) > 0 {
		item := pq.popMin()
		// Recompute the gain under the current Q (it can only shrink —
		// submodularity).
		fresh := state.gain(cands[item.idx])
		if fresh <= 0 {
			// This candidate is fully covered; drop it and keep scanning —
			// other candidates may still carry positive gain.
			continue
		}
		if len(pq) > 0 && fresh < pq[0].gain {
			item.gain = fresh
			pq.push(item)
			continue
		}
		state.add(cands[item.idx])
		out = append(out, Pick{Index: int(item.idx), Score: fresh})
	}
	state.pq = pq // hand any growth back to the pooled state
	return out
}

// Benefit evaluates benefit(Q) for an explicit question set (Eq. 16).
// chosen indexes into cands.
func Benefit(cands []Candidate, chosen []int) float64 {
	state := getBenefitState(maxVertexIndex(cands))
	defer putBenefitState(state)
	for _, i := range chosen {
		state.add(cands[i])
	}
	total := 0.0
	for _, p := range state.touched {
		total += state.bp[p]
	}
	return total
}

// MaxInf picks the questions with the largest inferred sets, ignoring
// match probability (Figure 5 baseline).
type MaxInf struct{}

// Select implements Strategy.
func (MaxInf) Select(cands []Candidate, mu int) []int {
	return topBy(cands, mu, func(c Candidate) float64 { return float64(len(c.Inferred)) })
}

// SelectRanked implements Ranked with the inferred-set size as the score.
func (m MaxInf) SelectRanked(cands []Candidate, mu int) []Pick {
	return ranked(cands, m.Select(cands, mu), func(c Candidate) float64 { return float64(len(c.Inferred)) })
}

// MaxPr picks the questions with the highest match probability, ignoring
// inference power (Figure 5 baseline).
type MaxPr struct{}

// Select implements Strategy.
func (MaxPr) Select(cands []Candidate, mu int) []int {
	return topBy(cands, mu, func(c Candidate) float64 { return c.Prob })
}

// SelectRanked implements Ranked with the match probability as the score.
func (m MaxPr) SelectRanked(cands []Candidate, mu int) []Pick {
	return ranked(cands, m.Select(cands, mu), func(c Candidate) float64 { return c.Prob })
}

// ranked annotates a Select result with its sort scores.
func ranked(cands []Candidate, idxs []int, score func(Candidate) float64) []Pick {
	out := make([]Pick, len(idxs))
	for i, idx := range idxs {
		out[i] = Pick{Index: idx, Score: score(cands[idx])}
	}
	return out
}

func topBy(cands []Candidate, mu int, score func(Candidate) float64) []int {
	if mu <= 0 || len(cands) == 0 {
		return nil
	}
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := score(cands[idx[a]]), score(cands[idx[b]])
		if sa != sb {
			return sa > sb
		}
		return cands[idx[a]].Pair.Less(cands[idx[b]].Pair)
	})
	if mu > len(idx) {
		mu = len(idx)
	}
	return idx[:mu]
}

// gainItem and gainHeap implement the lazy-greedy priority queue as a
// plain slice-backed binary heap of value types: (gain desc, index asc) is
// a total order, so the pop sequence is deterministic, and nothing boxes
// through container/heap's interface.
type gainItem struct {
	idx  int32
	gain float64
}

type gainHeap []gainItem

// before reports whether a outranks b.
//
//remp:hotpath
func (gainHeap) before(a, b gainItem) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.idx < b.idx
}

//remp:hotpath
func (h gainHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

//remp:hotpath
func (h *gainHeap) push(x gainItem) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.before(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

//remp:hotpath
func (h *gainHeap) popMin() gainItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	(*h).siftDown(0)
	return top
}

//remp:hotpath
func (h gainHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h.before(h[l], h[m]) {
			m = l
		}
		if r < len(h) && h.before(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
