package selection

// OrderByClosureGain reorders a chosen µ-batch for answer deduction:
// questions whose answer closes the most open batch-mates come first,
// so a deduction layer consulted between answers can skip as many of
// the remaining questions as possible. A question closes a batch-mate
// when confirming it would resolve the mate — the mate's vertex lies
// in its inferred set (relational propagation) or shares an entity
// with it (the 1:1 competitor cascade). Scheduling is greedy on the
// expected closure count and ties keep the incoming order (the
// strategy's global candidate order), so the reordering is a pure
// function of the chosen set and determinism holds.
func OrderByClosureGain(cands []Candidate, chosen []int) []int {
	if len(chosen) < 2 {
		return chosen
	}
	// Inferred[0] is a candidate's own vertex index; map each chosen
	// vertex to its batch position to score inferred-set coverage.
	own := make(map[int]int, len(chosen))
	for j, cj := range chosen {
		own[cands[cj].Inferred[0]] = j
	}
	// closable[i] is the set of batch positions question i would close.
	closable := make([][]bool, len(chosen))
	for i, ci := range chosen {
		c := make([]bool, len(chosen))
		for _, idx := range cands[ci].Inferred {
			if j, ok := own[idx]; ok && j != i {
				c[j] = true
			}
		}
		p := cands[ci].Pair
		for j, cj := range chosen {
			if j == i {
				continue
			}
			q := cands[cj].Pair
			if q.U1 == p.U1 || q.U2 == p.U2 {
				c[j] = true
			}
		}
		closable[i] = c
	}
	// Greedy schedule: repeatedly emit the unscheduled question with the
	// highest expected closure over mates not yet expected-closed — the
	// cascade only fires on a match, so the count is weighted by the
	// question's match probability. Ties keep the incoming order, so the
	// schedule is a pure function of the chosen set.
	scheduled := make([]bool, len(chosen))
	closed := make([]bool, len(chosen))
	out := make([]int, 0, len(chosen))
	for len(out) < len(chosen) {
		best, bestGain := -1, -1.0
		for i := range chosen {
			if scheduled[i] {
				continue
			}
			n := 0
			for j, c := range closable[i] {
				if c && !scheduled[j] && !closed[j] {
					n++
				}
			}
			if g := cands[chosen[i]].Prob * float64(n); g > bestGain {
				best, bestGain = i, g
			}
		}
		scheduled[best] = true
		for j, c := range closable[best] {
			if c {
				closed[j] = true
			}
		}
		out = append(out, chosen[best])
	}
	return out
}
