// Package forest is a from-scratch random forest classifier standing in
// for the scikit-learn RandomForestClassifier that §VII-B trains on
// isolated entity pairs: CART trees grown on bootstrap samples with Gini
// impurity and √d feature sub-sampling, aggregated by majority vote. Only
// binary classification is supported, which is all entity resolution
// needs.
package forest

import (
	"math"
	"math/rand"
	"sort"
)

// Options configures training; the zero value is replaced by defaults that
// mirror scikit-learn's (100 trees, √d features, unlimited depth,
// min-split 2).
type Options struct {
	NumTrees    int
	MaxDepth    int // 0 = unlimited
	MinSplit    int // minimum samples to attempt a split
	MaxFeatures int // 0 = floor(sqrt(d)) (at least 1)
	Seed        int64
}

func (o *Options) fill(dim int) {
	if o.NumTrees <= 0 {
		o.NumTrees = 100
	}
	if o.MinSplit <= 0 {
		o.MinSplit = 2
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = int(math.Sqrt(float64(dim)))
		if o.MaxFeatures < 1 {
			o.MaxFeatures = 1
		}
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 1 << 30
	}
}

// Forest is a trained random forest.
type Forest struct {
	trees []*node
	dim   int
}

type node struct {
	feature int     // split feature, -1 for leaves
	thresh  float64 // go left when x[feature] <= thresh
	left    *node
	right   *node
	prob    float64 // leaf: fraction of positive samples
}

// Train fits a forest on the sample matrix X (rows are feature vectors of
// equal length) and boolean labels y. It panics if inputs are empty or
// ragged — programmer error, not data error.
func Train(X [][]float64, y []bool, opts Options) *Forest {
	if len(X) == 0 || len(X) != len(y) {
		panic("forest: empty or mismatched training data")
	}
	dim := len(X[0])
	for _, row := range X {
		if len(row) != dim {
			panic("forest: ragged feature matrix")
		}
	}
	opts.fill(dim)
	rng := rand.New(rand.NewSource(opts.Seed))
	f := &Forest{dim: dim}
	n := len(X)
	for t := 0; t < opts.NumTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees = append(f.trees, grow(X, y, idx, 0, &opts, rng))
	}
	return f
}

// grow recursively builds one CART node.
func grow(X [][]float64, y []bool, idx []int, depth int, opts *Options, rng *rand.Rand) *node {
	pos := 0
	for _, i := range idx {
		if y[i] {
			pos++
		}
	}
	leafProb := float64(pos) / float64(len(idx))
	if pos == 0 || pos == len(idx) || len(idx) < opts.MinSplit || depth >= opts.MaxDepth {
		return &node{feature: -1, prob: leafProb}
	}

	feat, thresh, ok := bestSplit(X, y, idx, opts.MaxFeatures, rng)
	if !ok {
		return &node{feature: -1, prob: leafProb}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][feat] <= thresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &node{feature: -1, prob: leafProb}
	}
	return &node{
		feature: feat,
		thresh:  thresh,
		left:    grow(X, y, li, depth+1, opts, rng),
		right:   grow(X, y, ri, depth+1, opts, rng),
	}
}

// bestSplit scans a random feature subset for the split minimizing
// weighted Gini impurity.
func bestSplit(X [][]float64, y []bool, idx []int, maxFeatures int, rng *rand.Rand) (feat int, thresh float64, ok bool) {
	dim := len(X[0])
	perm := rng.Perm(dim)
	if maxFeatures < dim {
		perm = perm[:maxFeatures]
	}
	bestGini := math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for _, f := range perm {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		for vi := 0; vi+1 < len(vals); vi++ {
			if vals[vi] == vals[vi+1] {
				continue
			}
			t := (vals[vi] + vals[vi+1]) / 2
			g := splitGini(X, y, idx, f, t)
			if g < bestGini {
				bestGini, feat, thresh, ok = g, f, t, true
			}
		}
	}
	return feat, thresh, ok
}

// splitGini computes the weighted Gini impurity of splitting idx on
// feature f at threshold t.
func splitGini(X [][]float64, y []bool, idx []int, f int, t float64) float64 {
	var ln, lp, rn, rp float64
	for _, i := range idx {
		if X[i][f] <= t {
			ln++
			if y[i] {
				lp++
			}
		} else {
			rn++
			if y[i] {
				rp++
			}
		}
	}
	gini := func(n, p float64) float64 {
		if n == 0 {
			return 0
		}
		q := p / n
		return 2 * q * (1 - q)
	}
	total := ln + rn
	return ln/total*gini(ln, lp) + rn/total*gini(rn, rp)
}

// Prob returns the forest's estimated probability that x is positive
// (average of leaf probabilities across trees).
func (f *Forest) Prob(x []float64) float64 {
	if len(x) != f.dim {
		panic("forest: feature dimension mismatch")
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(f.trees))
}

// Predict returns the majority-vote classification of x.
func (f *Forest) Predict(x []float64) bool { return f.Prob(x) >= 0.5 }

func (n *node) predict(x []float64) float64 {
	for n.feature >= 0 {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.prob
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
