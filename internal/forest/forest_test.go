package forest

import (
	"math/rand"
	"testing"
)

func TestTrainLinearlySeparable(t *testing.T) {
	// Positive iff x0 > 0.5. Trivial for any tree ensemble.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []bool
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		X = append(X, x)
		y = append(y, x[0] > 0.5)
	}
	f := Train(X, y, Options{NumTrees: 30, Seed: 2})
	errs := 0
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if f.Predict(x) != (x[0] > 0.5) {
			errs++
		}
	}
	if errs > 10 {
		t.Errorf("separable data misclassified %d/200", errs)
	}
}

func TestTrainXor(t *testing.T) {
	// XOR needs depth ≥ 2 interactions — a single linear threshold fails,
	// trees handle it.
	var X [][]float64
	var y []bool
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		y = append(y, (a > 0.5) != (b > 0.5))
	}
	f := Train(X, y, Options{NumTrees: 50, Seed: 6, MaxFeatures: 2})
	errs := 0
	const n = 400
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		if f.Predict([]float64{a, b}) != ((a > 0.5) != (b > 0.5)) {
			errs++
		}
	}
	if float64(errs)/n > 0.1 {
		t.Errorf("XOR error rate %v, want < 0.1", float64(errs)/n)
	}
}

func TestPureLabelsGivePureLeaves(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {0.9}, {1}}
	y := []bool{false, false, true, true}
	f := Train(X, y, Options{NumTrees: 10, Seed: 3})
	if p := f.Prob([]float64{0.05}); p > 0.2 {
		t.Errorf("negative region prob = %v", p)
	}
	if p := f.Prob([]float64{0.95}); p < 0.8 {
		t.Errorf("positive region prob = %v", p)
	}
}

func TestAllSameLabel(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}}
	y := []bool{true, true, true}
	f := Train(X, y, Options{NumTrees: 5, Seed: 4})
	if !f.Predict([]float64{0.5}) {
		t.Error("all-positive training should predict positive")
	}
	if p := f.Prob([]float64{0.5}); p != 1 {
		t.Errorf("prob = %v, want 1", p)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var X [][]float64
	var y []bool
	for i := 0; i < 50; i++ {
		X = append(X, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Intn(2) == 0)
	}
	f1 := Train(X, y, Options{NumTrees: 20, Seed: 9})
	f2 := Train(X, y, Options{NumTrees: 20, Seed: 9})
	probe := []float64{0.3, 0.6, 0.9}
	if f1.Prob(probe) != f2.Prob(probe) {
		t.Error("same seed, different forests")
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	// Depth-1 stumps cannot fit XOR: accuracy should be near chance,
	// proving the limit is respected.
	var X [][]float64
	var y []bool
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		y = append(y, (a > 0.5) != (b > 0.5))
	}
	f := Train(X, y, Options{NumTrees: 30, MaxDepth: 1, Seed: 11})
	errs := 0
	for i := 0; i < 300; i++ {
		a, b := rng.Float64(), rng.Float64()
		if f.Predict([]float64{a, b}) != ((a > 0.5) != (b > 0.5)) {
			errs++
		}
	}
	if float64(errs)/300 < 0.25 {
		t.Errorf("depth-1 forest fit XOR too well (err %v) — depth limit ignored?", float64(errs)/300)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("empty", func() { Train(nil, nil, Options{}) })
	assertPanics("mismatched", func() { Train([][]float64{{1}}, []bool{true, false}, Options{}) })
	assertPanics("ragged", func() { Train([][]float64{{1}, {1, 2}}, []bool{true, false}, Options{}) })
	f := Train([][]float64{{0}, {1}}, []bool{false, true}, Options{NumTrees: 2})
	assertPanics("dim mismatch", func() { f.Prob([]float64{1, 2}) })
}

func TestNumTrees(t *testing.T) {
	f := Train([][]float64{{0}, {1}}, []bool{false, true}, Options{NumTrees: 7})
	if f.NumTrees() != 7 {
		t.Errorf("NumTrees = %d, want 7", f.NumTrees())
	}
}
