package baselines

import (
	"repro/internal/core"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// FromPrepared builds a baseline Input from a prepared Remp pipeline, so
// every method consumes the identical retained pairs, priors and vectors
// (the paper's setup: "all methods take the same retained entity matches
// Mrd as input").
func FromPrepared(p *core.Prepared, asker core.Asker, seeds []pair.Pair, seed int64) *Input {
	vectors := make(map[pair.Pair]simvec.Vector, len(p.Retained))
	for _, q := range p.Retained {
		vectors[q] = p.Pruner.VectorOf(q)
	}
	return &Input{
		K1:       p.K1,
		K2:       p.K2,
		Retained: append([]pair.Pair(nil), p.Retained...),
		Priors:   p.Priors,
		Vectors:  vectors,
		Asker:    asker,
		Seeds:    seeds,
		Seed:     seed,
	}
}
