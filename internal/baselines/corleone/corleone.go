// Package corleone reimplements the decision core of Corleone (Gokhale et
// al., SIGMOD 2014): hands-off crowdsourcing via active learning. A random
// forest is trained on crowd-labeled pairs, each round selects the most
// uncertain pairs (forest probability nearest 0.5) as the next crowd
// batch, and the final forest classifies everything. Deployed per
// entity-type partition as in the paper's setup. Its question count grows
// with the number of uncertain regions, which is why it asks the most
// questions in Table III.
package corleone

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/baselines"
	"repro/internal/forest"
	"repro/internal/pair"
)

// Options tunes the active learner.
type Options struct {
	// BatchSize is the number of questions per active-learning round.
	BatchSize int
	// MaxRounds bounds the rounds per partition.
	MaxRounds int
	// StopUncertainty ends a partition's learning when no unlabeled pair's
	// forest probability lies within (0.5±StopUncertainty).
	StopUncertainty float64
}

// Method is the Corleone baseline.
type Method struct {
	Opts Options
}

// Name implements baselines.Method.
func (Method) Name() string { return "Corleone" }

// Run implements baselines.Method.
func (m Method) Run(in *baselines.Input) *baselines.Output {
	opts := m.Opts
	if opts.BatchSize <= 0 {
		opts.BatchSize = 10
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 10
	}
	if opts.StopUncertainty <= 0 {
		opts.StopUncertainty = 0.15
	}
	parts := map[string][]pair.Pair{}
	for _, p := range in.Retained {
		key := baselines.TypeKey(in.K1, in.K2, p)
		parts[key] = append(parts[key], p)
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	rng := rand.New(rand.NewSource(in.Seed + 13))
	out := &baselines.Output{Matches: pair.Set{}}
	for _, key := range keys {
		m.runPartition(in, parts[key], opts, rng, out)
	}
	out.Questions = in.Asker.NumQuestions()
	return out
}

func (m Method) runPartition(in *baselines.Input, block []pair.Pair, opts Options, rng *rand.Rand, out *baselines.Output) {
	features := func(p pair.Pair) []float64 {
		v := in.Vectors[p]
		f := make([]float64, len(v)+1)
		copy(f, v)
		f[len(v)] = in.Priors[p]
		return f
	}

	labeled := map[pair.Pair]bool{}
	var X [][]float64
	var y []bool
	ask := func(p pair.Pair) {
		ans := baselines.AskBool(in.Asker, in.Priors[p], p)
		labeled[p] = ans
		X = append(X, features(p))
		y = append(y, ans)
	}

	// Bootstrap: probe the extremes and a random sample, like Corleone's
	// initial training set.
	sorted := append([]pair.Pair(nil), block...)
	sort.Slice(sorted, func(i, j int) bool {
		si := baselines.VectorScore(in.Vectors[sorted[i]], in.Priors[sorted[i]])
		sj := baselines.VectorScore(in.Vectors[sorted[j]], in.Priors[sorted[j]])
		if si != sj {
			return si > sj
		}
		return sorted[i].Less(sorted[j])
	})
	boot := opts.BatchSize
	if boot > len(sorted) {
		boot = len(sorted)
	}
	for i := 0; i < boot; i++ {
		// Alternate the two ends of the similarity axis.
		if i%2 == 0 {
			ask(sorted[i/2])
		} else {
			ask(sorted[len(sorted)-1-i/2])
		}
	}

	var f *forest.Forest
	train := func() bool {
		pos, neg := 0, 0
		for _, v := range y {
			if v {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			return false
		}
		f = forest.Train(X, y, forest.Options{NumTrees: 50, Seed: rng.Int63()})
		return true
	}

	for round := 0; round < opts.MaxRounds; round++ {
		if !train() {
			break
		}
		// Most uncertain unlabeled pairs.
		type unc struct {
			p pair.Pair
			u float64
		}
		var cands []unc
		for _, p := range block {
			if _, ok := labeled[p]; ok {
				continue
			}
			prob := f.Prob(features(p))
			if d := math.Abs(prob - 0.5); d < opts.StopUncertainty {
				cands = append(cands, unc{p, d})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].u != cands[j].u {
				return cands[i].u < cands[j].u
			}
			return cands[i].p.Less(cands[j].p)
		})
		n := opts.BatchSize
		if n > len(cands) {
			n = len(cands)
		}
		for i := 0; i < n; i++ {
			ask(cands[i].p)
		}
	}

	// Final classification.
	if f == nil && !train() {
		// Single-class labels: accept labeled positives only.
		for p, v := range labeled {
			if v {
				out.Matches.Add(p)
			}
		}
		return
	}
	for _, p := range block {
		if ans, ok := labeled[p]; ok {
			if ans {
				out.Matches.Add(p)
			}
			continue
		}
		if f.Predict(features(p)) {
			out.Matches.Add(p)
		}
	}
}
