package corleone

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// learnableInput builds pairs whose two-dimensional vectors separate
// matches ([hi, hi]) from non-matches, with a noisy boundary band.
func learnableInput(n int, seed int64) (*baselines.Input, *pair.Gold) {
	rng := rand.New(rand.NewSource(seed))
	k1, k2 := kb.New("a"), kb.New("b")
	var retained, gold []pair.Pair
	priors := map[pair.Pair]float64{}
	vectors := map[pair.Pair]simvec.Vector{}
	for i := 0; i < n; i++ {
		u1 := k1.AddEntity(fmt.Sprintf("e%d", i))
		u2 := k2.AddEntity(fmt.Sprintf("f%d", i))
		p := pair.Pair{U1: u1, U2: u2}
		retained = append(retained, p)
		isMatch := i%2 == 0
		base := 0.2
		if isMatch {
			base = 0.7
			gold = append(gold, p)
		}
		priors[p] = base + 0.2*rng.Float64()
		vectors[p] = simvec.Vector{base + 0.2*rng.Float64(), base + 0.2*rng.Float64()}
	}
	return &baselines.Input{
		K1: k1, K2: k2, Retained: retained, Priors: priors, Vectors: vectors, Seed: seed,
	}, pair.NewGold(gold)
}

func accurateAsker(gold *pair.Gold) core.Asker {
	return crowd.NewPlatform(gold.IsMatch, crowd.Config{
		NumWorkers: 10, WorkersPerQuestion: 5, ErrorRate: 0.02, Seed: 3,
	})
}

func TestCorleoneActiveLearning(t *testing.T) {
	in, gold := learnableInput(200, 5)
	in.Asker = accurateAsker(gold)
	out := Method{}.Run(in)
	prf := pair.Evaluate(out.Matches, gold)
	if prf.F1 < 0.85 {
		t.Errorf("learnable data F1 = %v (P=%v R=%v, Q=%d)",
			prf.F1, prf.Precision, prf.Recall, out.Questions)
	}
	// Active learning labels a fraction, not everything.
	if out.Questions >= len(in.Retained) {
		t.Errorf("labeled everything: %d questions", out.Questions)
	}
	if out.Questions == 0 {
		t.Error("asked nothing")
	}
}

func TestCorleoneLabeledPairsAreTrusted(t *testing.T) {
	in, gold := learnableInput(60, 9)
	in.Asker = accurateAsker(gold)
	out := Method{}.Run(in)
	// Every crowd-labeled positive must be in the output (labels override
	// the forest).
	prf := pair.Evaluate(out.Matches, gold)
	if prf.Recall < 0.7 {
		t.Errorf("recall = %v", prf.Recall)
	}
}

func TestCorleoneName(t *testing.T) {
	if (Method{}).Name() != "Corleone" {
		t.Error("wrong name")
	}
}
