// Package baselines defines the common harness for the competitor methods
// the paper evaluates against: the crowdsourced ER systems HIKE (CIKM'17),
// POWER (VLDBJ'18) and Corleone (SIGMOD'14), and the collective
// non-crowdsourced matchers PARIS (VLDB'11) and SiGMa (KDD'13). As in the
// paper — whose authors also reimplemented every competitor — these are
// faithful simplified reimplementations of each method's decision core,
// fed exactly the same retained candidate pairs, similarity vectors,
// priors and (for the crowd methods) the same simulated platform as Remp.
package baselines

import (
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// Input is the shared evaluation input: the paper runs every method on the
// same retained entity match set Mrd (§VIII, Setup).
type Input struct {
	K1, K2   *kb.KB
	Retained []pair.Pair
	Priors   map[pair.Pair]float64
	Vectors  map[pair.Pair]simvec.Vector
	// Asker is the crowdsourcing platform; nil for non-crowd methods.
	Asker core.Asker
	// Seeds are known matches (Table VI's sampled portions) for the
	// collective matchers.
	Seeds []pair.Pair
	// Seed drives any internal randomness.
	Seed int64
}

// Output is a method's result.
type Output struct {
	Matches   pair.Set
	Questions int
}

// Method is a competitor algorithm.
type Method interface {
	Name() string
	Run(in *Input) *Output
}

// AskBool asks the platform one question and aggregates the redundant
// labels into a boolean via the worker-probability posterior (Eq. 17) with
// a 0.5 decision boundary — how the competitor systems, which lack Remp's
// three-way verdicts, consume crowd answers.
func AskBool(asker core.Asker, prior float64, q pair.Pair) bool {
	labels := asker.Ask(q)
	inf := crowd.Infer(prior, labels, crowd.Thresholds{Accept: 0.5, Reject: 0.5})
	return inf.Posterior >= 0.5
}

// VectorScore is the mean similarity-vector component plus prior — the
// scalar aggregate several baselines order pairs by.
func VectorScore(v simvec.Vector, prior float64) float64 {
	if len(v) == 0 {
		return prior
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return (sum/float64(len(v)) + prior) / 2
}

// TypeKey partitions a pair by its entity types (the deployment the paper
// uses for POWER and Corleone: "we follow HIKE to partition entities into
// different clusters"). Untyped entities share one partition.
func TypeKey(k1, k2 *kb.KB, p pair.Pair) string {
	return k1.Type(p.U1) + "|" + k2.Type(p.U2)
}
