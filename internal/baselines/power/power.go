// Package power reimplements the decision core of POWER (Chai et al.,
// VLDB Journal 2018): a partial-order-based framework. Similarity vectors
// are grouped (identical vectors form one node), the dominance partial
// order over groups is materialized, and crowd questions walk the order:
// a YES on a group also resolves every group dominating it as matches, a
// NO resolves every dominated group as non-matches. Groups are probed in
// an order that maximizes how many pairs each answer settles. Deployed per
// entity-type partition as in the paper's setup.
package power

import (
	"sort"

	"repro/internal/baselines"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// Method is the POWER baseline.
type Method struct{}

// Name implements baselines.Method.
func (Method) Name() string { return "POWER" }

// group is a set of pairs sharing one similarity vector.
type group struct {
	vec   simvec.Vector
	prior float64 // mean prior, used to pick a representative question
	pairs []pair.Pair

	above []int // groups whose vectors dominate this one (≥)
	below []int // groups this one's vector dominates
}

// Run implements baselines.Method.
func (m Method) Run(in *baselines.Input) *baselines.Output {
	parts := map[string][]pair.Pair{}
	for _, p := range in.Retained {
		key := baselines.TypeKey(in.K1, in.K2, p)
		parts[key] = append(parts[key], p)
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := &baselines.Output{Matches: pair.Set{}}
	for _, key := range keys {
		m.runPartition(in, parts[key], out)
	}
	out.Questions = in.Asker.NumQuestions()
	return out
}

func (m Method) runPartition(in *baselines.Input, block []pair.Pair, out *baselines.Output) {
	// Group pairs by (augmented) vector: the prior joins the vector so
	// that label similarity participates in the partial order, as POWER's
	// similarity functions do.
	byVec := map[string]*group{}
	var groups []*group
	for _, p := range block {
		v := append(simvec.Vector{in.Priors[p]}, in.Vectors[p]...)
		k := vecKey(v)
		g, ok := byVec[k]
		if !ok {
			g = &group{vec: v}
			byVec[k] = g
			groups = append(groups, g)
		}
		g.pairs = append(g.pairs, p)
		g.prior += in.Priors[p]
	}
	for _, g := range groups {
		g.prior /= float64(len(g.pairs))
		sort.Slice(g.pairs, func(i, j int) bool { return g.pairs[i].Less(g.pairs[j]) })
	}
	sort.Slice(groups, func(i, j int) bool { return vecKey(groups[i].vec) < vecKey(groups[j].vec) })
	for i, gi := range groups {
		for j, gj := range groups {
			if i == j {
				continue
			}
			if gi.vec.Dominates(gj.vec) {
				gj.above = append(gj.above, i)
				gi.below = append(gi.below, j)
			}
		}
	}

	state := make([]int, len(groups)) // 0 unknown, 1 match, -1 non-match
	remaining := len(groups)
	for remaining > 0 {
		// Pick the unresolved group that settles the most pairs either way
		// (POWER's utility-per-question heuristic).
		best, bestGain := -1, -1
		for i, g := range groups {
			if state[i] != 0 {
				continue
			}
			gain := len(g.pairs)
			for _, j := range g.above {
				if state[j] == 0 {
					gain += len(groups[j].pairs)
				}
			}
			for _, j := range g.below {
				if state[j] == 0 {
					gain += len(groups[j].pairs)
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		g := groups[best]
		rep := g.pairs[len(g.pairs)/2]
		if baselines.AskBool(in.Asker, in.Priors[rep], rep) {
			resolve(groups, state, &remaining, best, 1)
			for _, j := range g.above {
				if state[j] == 0 {
					resolve(groups, state, &remaining, j, 1)
				}
			}
		} else {
			resolve(groups, state, &remaining, best, -1)
			for _, j := range g.below {
				if state[j] == 0 {
					resolve(groups, state, &remaining, j, -1)
				}
			}
		}
	}
	// Accuracy-control pass (POWER trades a few extra questions for
	// precision): the largest match-inferred groups that were never asked
	// directly get verified; a NO demotes the group and everything it
	// dominates, and the verification repeats on the remaining mass.
	asked := map[int]bool{}
	for round := 0; round < 5; round++ {
		best, bestSize := -1, 0
		for i, g := range groups {
			if state[i] == 1 && !asked[i] && len(g.pairs) > bestSize {
				best, bestSize = i, len(g.pairs)
			}
		}
		if best < 0 || bestSize < 2 {
			break
		}
		asked[best] = true
		g := groups[best]
		rep := g.pairs[len(g.pairs)/2]
		if !baselines.AskBool(in.Asker, in.Priors[rep], rep) {
			state[best] = -1
			for _, j := range g.below {
				if state[j] == 1 && !asked[j] {
					state[j] = -1
				}
			}
		}
	}

	for i, g := range groups {
		if state[i] == 1 {
			for _, p := range g.pairs {
				out.Matches.Add(p)
			}
		}
	}
}

func resolve(groups []*group, state []int, remaining *int, i, v int) {
	if state[i] != 0 {
		return
	}
	state[i] = v
	*remaining--
}

func vecKey(v simvec.Vector) string {
	// POWER groups pairs with identical similarity vectors; a fine
	// quantization (0.002) merges only floating-point noise.
	b := make([]byte, 0, len(v)*3)
	for _, x := range v {
		q := int(x * 500)
		b = append(b, byte('a'+q/26), byte('a'+q%26), ',')
	}
	return string(b)
}
