package power

import (
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

func gridInput(levels, perLevel int) (*baselines.Input, *pair.Gold) {
	k1, k2 := kb.New("a"), kb.New("b")
	var retained, gold []pair.Pair
	priors := map[pair.Pair]float64{}
	vectors := map[pair.Pair]simvec.Vector{}
	id := 0
	for l := 0; l < levels; l++ {
		sim := float64(l+1) / float64(levels+1)
		isMatch := sim > 0.5
		for j := 0; j < perLevel; j++ {
			u1 := k1.AddEntity(fmt.Sprintf("e%d", id))
			u2 := k2.AddEntity(fmt.Sprintf("f%d", id))
			id++
			p := pair.Pair{U1: u1, U2: u2}
			retained = append(retained, p)
			priors[p] = sim
			vectors[p] = simvec.Vector{sim}
			if isMatch {
				gold = append(gold, p)
			}
		}
	}
	return &baselines.Input{
		K1: k1, K2: k2, Retained: retained, Priors: priors, Vectors: vectors,
	}, pair.NewGold(gold)
}

func accurateAsker(gold *pair.Gold) core.Asker {
	return crowd.NewPlatform(gold.IsMatch, crowd.Config{
		NumWorkers: 10, WorkersPerQuestion: 5, ErrorRate: 0.01, Seed: 1,
	})
}

func TestPowerMonotoneBoundary(t *testing.T) {
	in, gold := gridInput(10, 4)
	in.Asker = accurateAsker(gold)
	out := Method{}.Run(in)
	prf := pair.Evaluate(out.Matches, gold)
	if prf.F1 < 0.95 {
		t.Errorf("clean monotone boundary F1 = %v", prf.F1)
	}
	// Group-level inference must use far fewer questions than pairs.
	if out.Questions >= len(in.Retained)/2 {
		t.Errorf("asked %d questions for %d pairs", out.Questions, len(in.Retained))
	}
}

func TestPowerInferenceBothDirections(t *testing.T) {
	in, gold := gridInput(6, 2)
	in.Asker = accurateAsker(gold)
	out := Method{}.Run(in)
	// Highest-similarity pairs must be matches, lowest non-matches.
	top := in.Retained[len(in.Retained)-1]
	bottom := in.Retained[0]
	if !out.Matches.Has(top) {
		t.Error("top group not inferred as match")
	}
	if out.Matches.Has(bottom) {
		t.Error("bottom group inferred as match")
	}
}

func TestPowerName(t *testing.T) {
	if (Method{}).Name() != "POWER" {
		t.Error("wrong name")
	}
}
