package sigma

import (
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// chainInput builds one long chain component plus m isolated pairs.
func chainInput(n, isolated int) (*baselines.Input, *pair.Gold, []pair.Pair) {
	k1, k2 := kb.New("a"), kb.New("b")
	r1, r2 := k1.AddRel("next"), k2.AddRel("next")
	var retained, gold, chain []pair.Pair
	priors := map[pair.Pair]float64{}
	var prev1, prev2 kb.EntityID = -1, -1
	for i := 0; i < n; i++ {
		u1, u2 := k1.AddEntity(fmt.Sprintf("c%d", i)), k2.AddEntity(fmt.Sprintf("c%d", i))
		p := pair.Pair{U1: u1, U2: u2}
		retained = append(retained, p)
		gold = append(gold, p)
		chain = append(chain, p)
		priors[p] = 0.7
		if prev1 >= 0 {
			k1.AddRelTriple(prev1, r1, u1)
			k2.AddRelTriple(prev2, r2, u2)
		}
		prev1, prev2 = u1, u2
	}
	for i := 0; i < isolated; i++ {
		u1, u2 := k1.AddEntity(fmt.Sprintf("i%d", i)), k2.AddEntity(fmt.Sprintf("i%d", i))
		p := pair.Pair{U1: u1, U2: u2}
		retained = append(retained, p)
		gold = append(gold, p)
		priors[p] = 0.9 // high string similarity, but disconnected
	}
	vectors := map[pair.Pair]simvec.Vector{}
	for _, p := range retained {
		vectors[p] = simvec.Vector{priors[p]}
	}
	return &baselines.Input{
		K1: k1, K2: k2, Retained: retained, Priors: priors, Vectors: vectors,
	}, pair.NewGold(gold), chain
}

func TestSigmaGrowsFromSeedRegion(t *testing.T) {
	in, _, chain := chainInput(12, 6)
	in.Seeds = []pair.Pair{chain[0]}
	out := Method{}.Run(in)
	// The whole chain is reachable from the seed...
	for _, p := range chain {
		if !out.Matches.Has(p) {
			t.Errorf("chain pair %v not matched", p)
		}
	}
	// ...but the isolated pairs must never enter the agenda, no matter how
	// string-similar they are (SiGMa's defining limitation on D-Y).
	for p := range out.Matches {
		if in.K1.EntityName(p.U1)[0] == 'i' {
			t.Errorf("isolated pair %v matched — agenda leaked beyond the seed region", p)
		}
	}
}

func TestSigmaNoSeedsNothing(t *testing.T) {
	in, _, _ := chainInput(5, 3)
	out := Method{}.Run(in)
	if out.Matches.Len() != 0 {
		t.Errorf("matched %d pairs without seeds", out.Matches.Len())
	}
}

func TestSigmaThresholdStopsWeakCandidates(t *testing.T) {
	in, _, chain := chainInput(6, 0)
	for p := range in.Priors {
		in.Priors[p] = 0.01 // below any sensible acceptance
	}
	in.Seeds = []pair.Pair{chain[0]}
	out := Method{Opts: Options{Alpha: 0.9, Threshold: 0.5}}.Run(in)
	// Only the seed itself survives.
	if out.Matches.Len() != 1 {
		t.Errorf("weak candidates accepted: %d matches", out.Matches.Len())
	}
}

func TestSigmaName(t *testing.T) {
	if (Method{}).Name() != "SiGMa" {
		t.Error("wrong name")
	}
}
