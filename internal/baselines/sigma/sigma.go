// Package sigma reimplements the decision core of SiGMa (Lacoste-Julien
// et al., KDD 2013): simple greedy matching. A priority queue is seeded
// with the known matches' neighborhoods; the best-scoring candidate —
// score = string similarity blended with the fraction of already-matched
// graph neighbors — is accepted greedily under a 1:1 constraint, and each
// acceptance raises the structural score of its neighbor candidates. No
// crowd, no retraction: a wrong early acceptance propagates, the error
// accumulation the paper contrasts with Remp.
package sigma

import (
	"container/heap"

	"repro/internal/baselines"
	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/pair"
)

// Options tunes the greedy matcher.
type Options struct {
	// Alpha blends label similarity (weight Alpha) against structural
	// neighbor support (weight 1−Alpha). SiGMa's default is 0.5 here.
	Alpha float64
	// Threshold is the minimal blended score to accept a candidate.
	Threshold float64
}

// Method is the SiGMa baseline.
type Method struct {
	Opts Options
}

// Name implements baselines.Method.
func (Method) Name() string { return "SiGMa" }

// Run implements baselines.Method.
func (m Method) Run(in *baselines.Input) *baselines.Output {
	opts := m.Opts
	if opts.Alpha <= 0 {
		opts.Alpha = 0.5
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 0.35
	}
	g := ergraph.Build(in.K1, in.K2, in.Retained)

	matched := pair.NewSet(in.Seeds...)
	used1 := map[kb.EntityID]bool{}
	used2 := map[kb.EntityID]bool{}
	for _, s := range in.Seeds {
		used1[s.U1] = true
		used2[s.U2] = true
	}

	// structural support: fraction of a vertex's graph neighbors already
	// matched.
	support := func(p pair.Pair) float64 {
		total, hits := 0, 0
		for _, e := range g.Out(p) {
			total++
			if matched.Has(e.To) {
				hits++
			}
		}
		for _, e := range g.In(p) {
			total++
			if matched.Has(e.From) {
				hits++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	score := func(p pair.Pair) float64 {
		return opts.Alpha*in.Priors[p] + (1-opts.Alpha)*support(p)
	}

	// SiGMa's agenda is seeded with the *neighbors of the seed matches*
	// and grows outward as matches are accepted — candidates outside the
	// connected region of the seeds are never considered, which is exactly
	// why SiGMa collapses on datasets whose matches are mostly isolated
	// (the paper's D-Y rows of Table VI).
	h := &agenda{}
	push := func(p pair.Pair) {
		if matched.Has(p) || used1[p.U1] || used2[p.U2] {
			return
		}
		heap.Push(h, item{p: p, score: score(p)})
	}
	for _, s := range in.Seeds {
		for _, e := range g.Out(s) {
			push(e.To)
		}
		for _, e := range g.In(s) {
			push(e.From)
		}
	}

	for h.Len() > 0 {
		it := heap.Pop(h).(item)
		if used1[it.p.U1] || used2[it.p.U2] {
			continue
		}
		fresh := score(it.p)
		if fresh < opts.Threshold {
			// Structural support only grows, and candidates whose support
			// grew were re-pushed with current scores below, so a stale
			// entry under threshold can simply be skipped.
			continue
		}
		matched.Add(it.p)
		used1[it.p.U1] = true
		used2[it.p.U2] = true
		// An acceptance raises the structural support of its graph
		// neighbors and admits them to the agenda (duplicates are harmless
		// — used entries are skipped on pop).
		for _, e := range g.Out(it.p) {
			push(e.To)
		}
		for _, e := range g.In(it.p) {
			push(e.From)
		}
	}

	return &baselines.Output{Matches: matched}
}

type item struct {
	p     pair.Pair
	score float64
}

type agenda []item

func (a agenda) Len() int { return len(a) }
func (a agenda) Less(i, j int) bool {
	if a[i].score != a[j].score {
		return a[i].score > a[j].score
	}
	return a[i].p.Less(a[j].p)
}
func (a agenda) Swap(i, j int) { a[i], a[j] = a[j], a[i] }
func (a *agenda) Push(x any)   { *a = append(*a, x.(item)) }
func (a *agenda) Pop() any {
	old := *a
	n := len(old)
	x := old[n-1]
	*a = old[:n-1]
	return x
}
