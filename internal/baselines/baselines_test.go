package baselines_test

import (
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/baselines/corleone"
	"repro/internal/baselines/hike"
	"repro/internal/baselines/paris"
	"repro/internal/baselines/power"
	"repro/internal/baselines/sigma"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/datasets"
	"repro/internal/pair"
)

func prepared(t *testing.T) (*core.Prepared, *datasets.Dataset) {
	t.Helper()
	ds := datasets.IIMB(1)
	p := core.Prepare(ds.K1, ds.K2, core.DefaultConfig())
	return p, ds
}

func crowdAsker(ds *datasets.Dataset, seed int64) core.Asker {
	return crowd.NewPlatform(ds.Gold.IsMatch, crowd.Config{
		NumWorkers: 50, WorkersPerQuestion: 5, QualityLow: 0.93, QualityHigh: 0.99, Seed: seed,
	})
}

func sampleSeeds(ds *datasets.Dataset, portion float64, seed int64) []pair.Pair {
	all := ds.Gold.Matches()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(all))
	n := int(portion * float64(len(all)))
	out := make([]pair.Pair, 0, n)
	for _, i := range perm[:n] {
		out = append(out, all[i])
	}
	return out
}

func TestCrowdBaselinesProduceReasonableResults(t *testing.T) {
	p, ds := prepared(t)
	methods := []baselines.Method{
		hike.Method{},
		power.Method{},
		corleone.Method{},
	}
	for _, m := range methods {
		asker := crowdAsker(ds, 7)
		in := baselines.FromPrepared(p, asker, nil, 7)
		out := m.Run(in)
		prf := pair.Evaluate(out.Matches, ds.Gold)
		t.Logf("%s: F1=%.3f P=%.3f R=%.3f Q=%d", m.Name(), prf.F1, prf.Precision, prf.Recall, out.Questions)
		if prf.F1 < 0.5 {
			t.Errorf("%s: F1 = %v, unreasonably low", m.Name(), prf.F1)
		}
		if out.Questions == 0 {
			t.Errorf("%s: asked no questions", m.Name())
		}
		if out.Questions > len(p.Retained) {
			t.Errorf("%s: asked more questions (%d) than candidate pairs (%d)",
				m.Name(), out.Questions, len(p.Retained))
		}
	}
}

func TestCollectiveBaselinesImproveWithSeeds(t *testing.T) {
	p, ds := prepared(t)
	for _, m := range []baselines.Method{paris.Method{}, sigma.Method{}} {
		var prevF1 float64
		for _, portion := range []float64{0.2, 0.8} {
			seeds := sampleSeeds(ds, portion, 3)
			in := baselines.FromPrepared(p, nil, seeds, 3)
			out := m.Run(in)
			prf := pair.Evaluate(out.Matches, ds.Gold)
			t.Logf("%s @%.0f%%: F1=%.3f", m.Name(), 100*portion, prf.F1)
			if prf.F1+0.02 < prevF1 {
				t.Errorf("%s: F1 dropped with more seeds (%v → %v)", m.Name(), prevF1, prf.F1)
			}
			prevF1 = prf.F1
			// Seeds must be preserved in the output.
			for _, s := range seeds {
				if !out.Matches.Has(s) {
					t.Fatalf("%s lost seed %v", m.Name(), s)
				}
			}
		}
		if prevF1 < 0.6 {
			t.Errorf("%s: F1 with 80%% seeds = %v, want ≥ 0.6", m.Name(), prevF1)
		}
	}
}

func TestRempBeatsCrowdBaselinesOnQuestions(t *testing.T) {
	// The paper's headline: same or better F1 with far fewer questions.
	ds := datasets.IMDBYAGO(1)
	cfg := core.DefaultConfig()
	p := core.Prepare(ds.K1, ds.K2, cfg)

	rempAsker := crowdAsker(ds, 11)
	rempRes := p.Run(rempAsker)
	rempPRF := pair.Evaluate(rempRes.Matches, ds.Gold)

	for _, m := range []baselines.Method{hike.Method{}, power.Method{}, corleone.Method{}} {
		p2 := core.Prepare(ds.K1, ds.K2, cfg) // fresh state
		asker := crowdAsker(ds, 11)
		out := m.Run(baselines.FromPrepared(p2, asker, nil, 11))
		prf := pair.Evaluate(out.Matches, ds.Gold)
		t.Logf("Remp: F1=%.3f Q=%d | %s: F1=%.3f Q=%d",
			rempPRF.F1, rempRes.Questions, m.Name(), prf.F1, out.Questions)
		// No baseline may Pareto-dominate Remp: to match Remp's F1 it must
		// spend more questions, and with fewer questions it must lose F1.
		// (The paper itself observes near-parity on question counts in
		// spots, e.g. POWER on D-A.)
		if prf.F1 >= rempPRF.F1 && out.Questions <= rempRes.Questions {
			t.Errorf("%s Pareto-dominates Remp: F1 %.3f ≥ %.3f with Q %d ≤ %d",
				m.Name(), prf.F1, rempPRF.F1, out.Questions, rempRes.Questions)
		}
	}
	if rempPRF.F1 < 0.9 {
		t.Errorf("Remp F1 = %v on I-Y fixture", rempPRF.F1)
	}
}

func TestAskBoolMajority(t *testing.T) {
	gold := pair.NewGold([]pair.Pair{{U1: 1, U2: 1}})
	asker := crowd.NewPlatform(gold.IsMatch, crowd.Config{
		NumWorkers: 20, WorkersPerQuestion: 5, ErrorRate: 0.05, Seed: 1,
	})
	if !baselines.AskBool(asker, 0.5, pair.Pair{U1: 1, U2: 1}) {
		t.Error("true match answered false")
	}
	if baselines.AskBool(asker, 0.5, pair.Pair{U1: 2, U2: 2}) {
		t.Error("non-match answered true")
	}
}

func TestVectorScore(t *testing.T) {
	if got := baselines.VectorScore(nil, 0.8); got != 0.8 {
		t.Errorf("empty vector: %v, want prior", got)
	}
	got := baselines.VectorScore([]float64{1, 0}, 0.5)
	if got != 0.5 {
		t.Errorf("VectorScore = %v, want 0.5", got)
	}
}
