// Package paris reimplements the decision core of PARIS (Suchanek et al.,
// VLDB 2011): probabilistic alignment by fixpoint iteration. Match
// probabilities start from the seeds, and each round every candidate
// pair's probability is recomputed from its neighbors' probabilities
// weighted by per-relationship-pair consistency (PARIS's functionality ×
// subrelation terms collapse to exactly this under our KB model), with a
// noisy-or combination and a greedy 1:1 selection at the end. No crowd is
// involved, so errors accumulate across rounds — the behavior Table VI
// contrasts with Remp.
package paris

import (
	"sort"

	"repro/internal/baselines"
	"repro/internal/consistency"
	"repro/internal/ergraph"
	"repro/internal/kb"
	"repro/internal/pair"
)

// Options tunes the fixpoint iteration.
type Options struct {
	Rounds    int     // default 8
	Threshold float64 // acceptance threshold, default 0.5
}

// Method is the PARIS baseline.
type Method struct {
	Opts Options
}

// Name implements baselines.Method.
func (Method) Name() string { return "PARIS" }

// Run implements baselines.Method.
func (m Method) Run(in *baselines.Input) *baselines.Output {
	opts := m.Opts
	if opts.Rounds <= 0 {
		opts.Rounds = 8
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 0.5
	}
	g := ergraph.Build(in.K1, in.K2, in.Retained)

	// PARIS estimates its relation-alignment terms from instance pairs of
	// high equivalence probability — which at bootstrap time includes
	// literal-identical pairs, not only the seeds — and refines them as
	// the fixpoint iteration finds new matches.
	seedSet := pair.NewSet(in.Seeds...)
	evidence := seedSet.Clone()
	for _, p := range in.Retained {
		if in.Priors[p] >= 0.8 {
			evidence.Add(p)
		}
	}
	fitCons := func(matched pair.Set) map[ergraph.RelPair]consistency.Estimate {
		support := matched.Clone()
		for e := range evidence {
			support.Add(e)
		}
		cons := map[ergraph.RelPair]consistency.Estimate{}
		for _, label := range g.Labels() {
			var obs []consistency.Observation
			for s := range support {
				n1, n2 := valueSets(in, label, s)
				if len(n1) == 0 && len(n2) == 0 {
					continue
				}
				known := 0
				for _, v1 := range n1 {
					for _, v2 := range n2 {
						if support.Has(pair.Pair{U1: v1, U2: v2}) {
							known++
							break
						}
					}
				}
				obs = append(obs, consistency.Observation{N1: len(n1), N2: len(n2), KnownL: known})
			}
			cons[label] = consistency.FromCounts(obs, consistency.DefaultOptions())
		}
		return cons
	}

	prob := make(map[pair.Pair]float64, len(in.Retained))
	for _, s := range in.Seeds {
		prob[s] = 1
	}
	cons := fitCons(seedSet)

	for round := 0; round < opts.Rounds; round++ {
		next := make(map[pair.Pair]float64, len(prob))
		for s := range prob {
			next[s] = prob[s]
		}
		for _, s := range in.Seeds {
			next[s] = 1
		}
		for _, v := range g.Vertices() {
			if seedSet.Has(v) {
				continue
			}
			// Noisy-or over incoming evidence: an in-edge from a probable
			// match u via label L contributes ε(L)·P(u).
			acc := 1.0
			for _, e := range g.In(v) {
				pu := prob[e.From]
				if pu <= 0 {
					continue
				}
				est := cons[e.Label]
				eps := est.Eps1
				if est.Eps2 < eps {
					eps = est.Eps2
				}
				acc *= 1 - eps*pu
			}
			support := 1 - acc
			if support > 0 {
				next[v] = support
			}
		}
		prob = next
		// Refine relation alignment with this round's confident matches.
		matched := pair.Set{}
		for p, s := range prob {
			if s >= opts.Threshold {
				matched.Add(p)
			}
		}
		cons = fitCons(matched)
	}

	// Greedy 1:1 acceptance by descending probability.
	type scored struct {
		p pair.Pair
		s float64
	}
	var order []scored
	for p, s := range prob {
		if s >= opts.Threshold {
			order = append(order, scored{p, s})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].s != order[j].s {
			return order[i].s > order[j].s
		}
		return order[i].p.Less(order[j].p)
	})
	out := &baselines.Output{Matches: pair.Set{}}
	used1 := map[kb.EntityID]bool{}
	used2 := map[kb.EntityID]bool{}
	for _, sc := range order {
		if used1[sc.p.U1] || used2[sc.p.U2] {
			continue
		}
		used1[sc.p.U1] = true
		used2[sc.p.U2] = true
		out.Matches.Add(sc.p)
	}
	return out
}

// valueSets returns the label-direction-appropriate value sets of a seed
// match.
func valueSets(in *baselines.Input, label ergraph.RelPair, s pair.Pair) (n1, n2 []kb.EntityID) {
	if label.Inverse {
		return in.K1.In(s.U1, label.R1), in.K2.In(s.U2, label.R2)
	}
	return in.K1.Out(s.U1, label.R1), in.K2.Out(s.U2, label.R2)
}
