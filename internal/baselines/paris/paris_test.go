package paris

import (
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// starInput builds n author→book stars with full seeds for half of them.
func starInput(n int) (*baselines.Input, *pair.Gold) {
	k1, k2 := kb.New("a"), kb.New("b")
	r1, r2 := k1.AddRel("wrote"), k2.AddRel("wrote")
	var retained []pair.Pair
	var gold []pair.Pair
	priors := map[pair.Pair]float64{}
	for i := 0; i < n; i++ {
		a1, a2 := k1.AddEntity(fmt.Sprintf("a%d", i)), k2.AddEntity(fmt.Sprintf("a%d", i))
		b1, b2 := k1.AddEntity(fmt.Sprintf("b%d", i)), k2.AddEntity(fmt.Sprintf("b%d", i))
		k1.AddRelTriple(a1, r1, b1)
		k2.AddRelTriple(a2, r2, b2)
		ap := pair.Pair{U1: a1, U2: a2}
		bp := pair.Pair{U1: b1, U2: b2}
		retained = append(retained, ap, bp)
		gold = append(gold, ap, bp)
		priors[ap], priors[bp] = 0.8, 0.8
	}
	vectors := map[pair.Pair]simvec.Vector{}
	for _, p := range retained {
		vectors[p] = simvec.Vector{priors[p]}
	}
	return &baselines.Input{
		K1: k1, K2: k2, Retained: retained, Priors: priors, Vectors: vectors,
	}, pair.NewGold(gold)
}

func TestParisPropagatesFromSeeds(t *testing.T) {
	in, gold := starInput(10)
	// Seed every author pair; PARIS must recover the book pairs.
	for _, m := range gold.Matches() {
		if in.K1.EntityName(m.U1)[0] == 'a' {
			in.Seeds = append(in.Seeds, m)
		}
	}
	out := Method{}.Run(in)
	prf := pair.Evaluate(out.Matches, gold)
	if prf.Recall < 0.99 {
		t.Errorf("recall = %v, want ≈ 1 (matches=%d)", prf.Recall, out.Matches.Len())
	}
	if prf.Precision < 0.99 {
		t.Errorf("precision = %v", prf.Precision)
	}
}

func TestParisNoSeedsNoMatches(t *testing.T) {
	in, _ := starInput(5)
	out := Method{}.Run(in)
	if out.Matches.Len() != 0 {
		t.Errorf("PARIS invented %d matches without seeds", out.Matches.Len())
	}
}

func TestParisRespectsOneToOne(t *testing.T) {
	in, gold := starInput(8)
	in.Seeds = gold.Matches()[:4]
	out := Method{}.Run(in)
	seen1 := map[kb.EntityID]bool{}
	seen2 := map[kb.EntityID]bool{}
	for m := range out.Matches {
		if seen1[m.U1] || seen2[m.U2] {
			t.Fatalf("1:1 violated at %v", m)
		}
		seen1[m.U1] = true
		seen2[m.U2] = true
	}
}

func TestParisName(t *testing.T) {
	if (Method{}).Name() != "PARIS" {
		t.Error("wrong name")
	}
}
