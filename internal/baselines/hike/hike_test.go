package hike

import (
	"fmt"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// monotoneInput builds a cleanly separable instance: matches have high
// vectors, non-matches low ones, in two type partitions.
func monotoneInput(n int) (*baselines.Input, *pair.Gold) {
	k1, k2 := kb.New("a"), kb.New("b")
	var retained, gold []pair.Pair
	priors := map[pair.Pair]float64{}
	vectors := map[pair.Pair]simvec.Vector{}
	for i := 0; i < n; i++ {
		typ := "person"
		if i%2 == 0 {
			typ = "movie"
		}
		u1, u2 := k1.AddEntity(fmt.Sprintf("m%d", i)), k2.AddEntity(fmt.Sprintf("m%d", i))
		k1.SetType(u1, typ)
		k2.SetType(u2, typ)
		p := pair.Pair{U1: u1, U2: u2}
		retained = append(retained, p)
		gold = append(gold, p)
		priors[p] = 0.9
		vectors[p] = simvec.Vector{0.9}

		v1, v2 := k1.AddEntity(fmt.Sprintf("x%d", i)), k2.AddEntity(fmt.Sprintf("y%d", i))
		k1.SetType(v1, typ)
		k2.SetType(v2, typ)
		q := pair.Pair{U1: v1, U2: u2} // junk: shares u2
		_ = v2
		retained = append(retained, q)
		priors[q] = 0.2
		vectors[q] = simvec.Vector{0.1}
	}
	return &baselines.Input{
		K1: k1, K2: k2, Retained: retained, Priors: priors, Vectors: vectors,
	}, pair.NewGold(gold)
}

func oracleAsker(gold *pair.Gold) core.Asker {
	return crowd.NewPlatform(gold.IsMatch, crowd.Config{
		NumWorkers: 10, WorkersPerQuestion: 5, ErrorRate: 0.01, Seed: 1,
	})
}

func TestHikeSeparableData(t *testing.T) {
	in, gold := monotoneInput(20)
	in.Asker = oracleAsker(gold)
	out := Method{}.Run(in)
	prf := pair.Evaluate(out.Matches, gold)
	if prf.F1 < 0.9 {
		t.Errorf("separable data F1 = %v (P=%v R=%v)", prf.F1, prf.Precision, prf.Recall)
	}
	if out.Questions == 0 {
		t.Error("no questions asked")
	}
	// Binary search + verification: far fewer questions than pairs.
	if out.Questions > len(in.Retained)/2 {
		t.Errorf("asked %d of %d pairs — binary search not working", out.Questions, len(in.Retained))
	}
}

func TestHikePartitionsByType(t *testing.T) {
	in, gold := monotoneInput(8)
	in.Asker = oracleAsker(gold)
	out := Method{}.Run(in)
	// Both partitions must produce matches.
	types := map[string]bool{}
	for m := range out.Matches {
		types[in.K1.Type(m.U1)] = true
	}
	if !types["person"] || !types["movie"] {
		t.Errorf("partition missing from results: %v", types)
	}
}

func TestHikeName(t *testing.T) {
	if (Method{}).Name() != "HIKE" {
		t.Error("wrong name")
	}
}
