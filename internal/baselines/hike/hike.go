// Package hike reimplements the decision core of HIKE (Zhuang et al.,
// CIKM 2017): a hybrid human-machine method that first partitions entity
// pairs into clusters of similar schema (here: entity-type partitions,
// refined by attribute signature), then runs a monotonicity-based
// threshold search inside each partition — crowd questions probe a sorted
// similarity axis with binary search, and the discovered boundary labels
// everything above as matches. It inherits monotonicity's weakness on
// KB data whose similarity signal is noisy (Table III).
package hike

import (
	"sort"

	"repro/internal/baselines"
	"repro/internal/pair"
)

// Options tunes the partition search.
type Options struct {
	// Verify is the number of extra confirmation questions per partition
	// boundary (HIKE asks several pairs around the boundary). Default 2.
	Verify int
}

// Method is the HIKE baseline.
type Method struct {
	Opts Options
}

// Name implements baselines.Method.
func (Method) Name() string { return "HIKE" }

// Run implements baselines.Method.
func (m Method) Run(in *baselines.Input) *baselines.Output {
	verify := m.Opts.Verify
	if verify <= 0 {
		verify = 2
	}
	// Partition by type plus attribute signature (HIKE's hierarchical
	// clustering groups entities with similar attributes and
	// relationships).
	parts := map[string][]pair.Pair{}
	for _, p := range in.Retained {
		key := baselines.TypeKey(in.K1, in.K2, p) + "/" + sigKey(in, p)
		parts[key] = append(parts[key], p)
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := &baselines.Output{Matches: pair.Set{}}
	for _, key := range keys {
		block := parts[key]
		// Sort by blended similarity score, descending.
		sort.Slice(block, func(i, j int) bool {
			si := baselines.VectorScore(in.Vectors[block[i]], in.Priors[block[i]])
			sj := baselines.VectorScore(in.Vectors[block[j]], in.Priors[block[j]])
			if si != sj {
				return si > sj
			}
			return block[i].Less(block[j])
		})
		// Binary search for the match/non-match boundary: monotonicity says
		// everything above a matching pair matches, everything below a
		// non-matching pair does not.
		lo, hi := 0, len(block) // boundary in [lo, hi]: block[:boundary] match
		for lo < hi {
			mid := (lo + hi) / 2
			if baselines.AskBool(in.Asker, in.Priors[block[mid]], block[mid]) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// Boundary verification (reduces monotonicity violations a little).
		for v := 0; v < verify && lo-1-v >= 0; v++ {
			if !baselines.AskBool(in.Asker, in.Priors[block[lo-1-v]], block[lo-1-v]) {
				lo = lo - 1 - v
			}
		}
		for _, p := range block[:lo] {
			out.Matches.Add(p)
		}
	}
	out.Questions = in.Asker.NumQuestions()
	return out
}

// sigKey buckets a pair by which vector components are informative.
func sigKey(in *baselines.Input, p pair.Pair) string {
	v := in.Vectors[p]
	key := make([]byte, len(v))
	for i, x := range v {
		if x > 0 {
			key[i] = '1'
		} else {
			key[i] = '0'
		}
	}
	return string(key)
}
