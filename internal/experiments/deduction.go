package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/pair"
)

// DeducePoint is one row of the deduction experiment: one built-in
// dataset resolved at one shard count with answer deduction on,
// compared against the Deduce-off reference run.
type DeducePoint struct {
	Dataset string `json:"dataset"`
	Shards  int    `json:"shards"`
	// BaseQuestions is the crowd cost of the Deduce-off reference.
	BaseQuestions int `json:"base_questions"`
	// Questions and Deduced are the Deduce-on run's crowd cost and the
	// selected questions deduction answered for free.
	Questions int `json:"questions"`
	Deduced   int `json:"deduced"`
	// Savings is the crowd-questions-saved ratio vs the reference.
	Savings float64 `json:"savings"`
	F1      float64 `json:"f1"`
	// Equivalent means the Deduce-on result diverged from the
	// reference in no resolved pair (eval.ShardDivergence clean) and
	// respects the 1:1 constraint.
	Equivalent bool `json:"equivalent"`
}

// DeductionReport is the machine-readable result of the deduction
// experiment, merged into BENCH_remp.json by cmd/benchreport and gated
// by its -min-deduce-savings flag.
type DeductionReport struct {
	Points []DeducePoint `json:"points"`
}

// MinSavings returns the smallest savings across shard counts for a
// dataset (the conservative number the benchreport gate scores).
func (r *DeductionReport) MinSavings(dataset string) (float64, bool) {
	min, found := 0.0, false
	for _, pt := range r.Points {
		if pt.Dataset != dataset {
			continue
		}
		if !found || pt.Savings < min {
			min, found = pt.Savings, true
		}
	}
	return min, found
}

// Deduction measures transitive-closure answer deduction on every
// built-in dataset: each is resolved against a ground-truth oracle
// once with Deduce off (the crowd-cost reference) and then with Deduce
// on at 1 and 4 shards. Deduction must save crowd questions without
// changing a single resolved pair — every Deduce-on outcome is checked
// against the reference with the same divergence test the shard
// experiments use, plus the 1:1 constraint.
func Deduction(w io.Writer, seed int64) *DeductionReport {
	header(w, "Answer deduction: crowd questions saved per dataset (oracle workers)")
	report := &DeductionReport{}
	for _, name := range datasets.Names() {
		ds, err := datasets.ByName(name, seed)
		if err != nil {
			panic(err)
		}

		baseCfg := core.DefaultConfig()
		baseCfg.Seed = seed
		baseCfg.Shards = 1
		base := core.Prepare(ds.K1, ds.K2, baseCfg).Run(core.NewOracleAsker(ds.Gold.IsMatch))
		ref := eval.Outcome{Matches: base.Matches, NonMatches: base.NonMatches}

		for _, shards := range []int{1, 4} {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.Shards = shards
			cfg.Deduce = true
			asker := core.NewOracleAsker(ds.Gold.IsMatch)
			res := core.Prepare(ds.K1, ds.K2, cfg).Run(asker)

			equivalent := true
			if err := eval.ShardDivergence(ref, eval.Outcome{Matches: res.Matches, NonMatches: res.NonMatches}); err != nil {
				equivalent = false
				fmt.Fprintf(w, "  !! %s @ %d shard(s): deduction diverged: %v\n", name, shards, err)
			}
			if err := eval.OneToOne(res.Matches); err != nil {
				equivalent = false
				fmt.Fprintf(w, "  !! %s @ %d shard(s): 1:1 violation: %v\n", name, shards, err)
			}
			savings := 0.0
			if base.Questions > 0 {
				savings = 1 - float64(res.Questions)/float64(base.Questions)
			}
			prf := pair.Evaluate(res.Matches, ds.Gold)
			fmt.Fprintf(w, "%-8s %d shard(s): questions %4d → %4d  (deduced %4d, saved %s)  F1=%.3f  equivalent=%v\n",
				name, shards, base.Questions, res.Questions, res.Deduced, pct(savings), prf.F1, equivalent)
			report.Points = append(report.Points, DeducePoint{
				Dataset: name, Shards: shards,
				BaseQuestions: base.Questions, Questions: res.Questions, Deduced: res.Deduced,
				Savings: savings, F1: prf.F1, Equivalent: equivalent,
			})
		}
	}
	return report
}
