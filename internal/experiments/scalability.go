package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/attrmatch"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/pair"
	"repro/internal/selection"
	"repro/internal/simvec"
)

// ScalePoint is one point of Figure 6: the runtime of one algorithm on a
// fraction of the input pairs.
type ScalePoint struct {
	Algorithm string
	Fraction  float64
	Elapsed   time.Duration
}

// ShardPoint is one row of the shard-count speedup curve: the end-to-end
// human–machine loop runtime at one shard count, its speedup over the
// monolithic run, and whether the resolved pairs matched the monolithic
// reference exactly.
type ShardPoint struct {
	Shards    int     `json:"shards"`
	PrepareNS int64   `json:"prepare_ns"`
	LoopNS    int64   `json:"loop_ns"`
	Speedup   float64 `json:"speedup"`
	Questions int     `json:"questions"`
	F1        float64 `json:"f1"`
	// Stages breaks LoopNS down by pipeline stage (prepare, infer,
	// select, apply, reestimate → cumulative nanoseconds), measured by
	// the same obs.LoopTrace the server exports on /metrics.
	Stages     map[string]int64 `json:"stage_ns,omitempty"`
	Equivalent bool             `json:"equivalent"`
}

// ShardReport is the machine-readable result of the shard scalability
// experiment, merged into BENCH_remp.json by cmd/benchreport.
type ShardReport struct {
	Dataset    string       `json:"dataset"`
	Vertices   int          `json:"vertices"`
	Edges      int          `json:"edges"`
	Components int          `json:"components"`
	Points     []ShardPoint `json:"points"`
}

// ShardScalability measures the sharded resolution loop on the clustered
// synthetic graph: for each shard count, the full human–machine loop runs
// to completion against an oracle crowd and is timed end to end (initial
// engine build through final classification); every sharded outcome is
// checked for exact equivalence with the monolithic reference via the
// cross-shard monotonicity check. The speedup comes from three scopes a
// monolithic pipeline cannot apply — per-shard re-estimation rebuilds,
// per-shard candidate/selection caching, settled-shard freezing — plus
// shard-parallel fan-out on multi-core hosts.
func ShardScalability(w io.Writer, seed int64) *ShardReport {
	return shardScalability(w, seed, 120, 60)
}

func shardScalability(w io.Writer, seed int64, clusters, meanSize int) *ShardReport {
	header(w, "Shard speedup: end-to-end loop runtime vs shard count (clustered synthetic)")
	ds := datasets.Clustered(clusters, meanSize, seed)
	report := &ShardReport{Dataset: ds.Name}
	var refOutcome eval.Outcome
	var baseLoop time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.Shards = shards
		tr := obs.NewLoopTrace(obs.WallClock())
		cfg.Obs = &obs.Pipeline{Trace: tr}
		start := time.Now()
		p := core.Prepare(ds.K1, ds.K2, cfg)
		prep := time.Since(start)
		start = time.Now()
		res := p.Run(core.NewOracleAsker(ds.Gold.IsMatch))
		loop := time.Since(start)

		if shards == 1 {
			report.Vertices = p.Graph.NumVertices()
			report.Edges = p.Graph.NumEdges()
			baseLoop = loop
			refOutcome = eval.Outcome{Matches: res.Matches, NonMatches: res.NonMatches}
		}
		if p.Part != nil {
			report.Components = p.Part.NumComponents()
		}
		equivalent := true
		if shards > 1 {
			if err := eval.ShardDivergence(refOutcome, eval.Outcome{Matches: res.Matches, NonMatches: res.NonMatches}); err != nil {
				equivalent = false
				fmt.Fprintf(w, "  !! divergence at %d shards: %v\n", shards, err)
			}
		}
		if err := eval.OneToOne(res.Matches); err != nil {
			equivalent = false
			fmt.Fprintf(w, "  !! 1:1 violation at %d shards: %v\n", shards, err)
		}
		prf := pair.Evaluate(res.Matches, ds.Gold)
		speedup := float64(baseLoop) / float64(loop)
		fmt.Fprintf(w, "%d shard(s): prepare %8v  loop %8v  speedup %.2fx  Q=%d  F1=%.3f  equivalent=%v\n",
			shards, prep.Round(time.Millisecond), loop.Round(time.Millisecond), speedup, res.Questions, prf.F1, equivalent)
		report.Points = append(report.Points, ShardPoint{
			Shards: shards, PrepareNS: prep.Nanoseconds(), LoopNS: loop.Nanoseconds(),
			Speedup: speedup, Questions: res.Questions, F1: prf.F1,
			Stages: tr.Totals(), Equivalent: equivalent,
		})
	}
	return report
}

// Figure6 reproduces "Running time w.r.t. different portion of entity
// pairs" on the D-Y dataset: Algorithm 1 (partial-order pruning) on 25–100%
// of the candidate matches Mc, and Algorithm 2 (inferred-set discovery) +
// Algorithm 3 (greedy question selection) on 25–100% of the retained
// matches Mrd.
func Figure6(w io.Writer, seed int64) []ScalePoint {
	header(w, "Figure 6: running time vs portion of entity pairs (D-Y)")
	ds, err := datasets.ByName("d-y", seed)
	if err != nil {
		panic(err)
	}
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	var out []ScalePoint

	// Shared stage-1 artifacts.
	blk := blocking.Generate(ds.K1, ds.K2, blocking.DefaultOptions())
	am := attrmatch.FindMatches(ds.K1, ds.K2, blk.Initial, attrmatch.DefaultOptions())
	builder := simvec.NewBuilder(ds.K1, ds.K2, am, 0.9)
	candPairs := make([]pair.Pair, len(blk.Candidates))
	for i, c := range blk.Candidates {
		candPairs[i] = c.Pair
	}

	// Algorithm 1 on fractions of Mc (vector construction included, as in
	// the paper's analysis where it dominates).
	for _, f := range fractions {
		n := int(f * float64(len(candPairs)))
		subset := candPairs[:n]
		start := time.Now()
		pruner := simvec.NewPruner(subset, builder.All(subset))
		_ = pruner.Prune(subset, 4)
		el := time.Since(start)
		fmt.Fprintf(w, "Algorithm 1 @ %3.0f%% of Mc  (%6d pairs): %v\n", 100*f, n, el)
		out = append(out, ScalePoint{Algorithm: "Algorithm 1", Fraction: f, Elapsed: el})
	}

	// Algorithms 2 and 3 on fractions of Mrd. The sweep measures the
	// monolithic algorithms, so sharding is pinned off; ShardSpeedup
	// measures the sharded loop.
	monoCfg := core.DefaultConfig()
	monoCfg.Shards = 1
	full := core.Prepare(ds.K1, ds.K2, monoCfg)
	for _, f := range fractions {
		n := int(f * float64(len(full.Retained)))
		subset := full.Retained[:n]
		cfg := core.DefaultConfig()
		cfg.Shards = 1
		sub := core.PrepareOnRetained(ds.K1, ds.K2, cfg, subset, full.Blocking)

		start := time.Now()
		inferred := sub.Prob.InferAll(cfg.Tau)
		el2 := time.Since(start)
		fmt.Fprintf(w, "Algorithm 2 @ %3.0f%% of Mrd (%6d pairs): %v\n", 100*f, n, el2)
		out = append(out, ScalePoint{Algorithm: "Algorithm 2", Fraction: f, Elapsed: el2})

		start = time.Now()
		cands := make([]selection.Candidate, 0, n)
		for i, v := range sub.Graph.Vertices() {
			inf := []int{i}
			for _, en := range inferred.Ball(i) {
				inf = append(inf, int(en.Idx))
			}
			cands = append(cands, selection.Candidate{Pair: v, Prob: sub.Priors[v], Inferred: inf})
		}
		_ = (selection.Greedy{}).Select(cands, 10)
		el3 := time.Since(start)
		fmt.Fprintf(w, "Algorithm 3 @ %3.0f%% of Mrd (%6d pairs): %v\n", 100*f, n, el3)
		out = append(out, ScalePoint{Algorithm: "Algorithm 3", Fraction: f, Elapsed: el3})
	}
	return out
}
