package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/attrmatch"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pair"
	"repro/internal/selection"
	"repro/internal/simvec"
)

// ScalePoint is one point of Figure 6: the runtime of one algorithm on a
// fraction of the input pairs.
type ScalePoint struct {
	Algorithm string
	Fraction  float64
	Elapsed   time.Duration
}

// Figure6 reproduces "Running time w.r.t. different portion of entity
// pairs" on the D-Y dataset: Algorithm 1 (partial-order pruning) on 25–100%
// of the candidate matches Mc, and Algorithm 2 (inferred-set discovery) +
// Algorithm 3 (greedy question selection) on 25–100% of the retained
// matches Mrd.
func Figure6(w io.Writer, seed int64) []ScalePoint {
	header(w, "Figure 6: running time vs portion of entity pairs (D-Y)")
	ds, err := datasets.ByName("d-y", seed)
	if err != nil {
		panic(err)
	}
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	var out []ScalePoint

	// Shared stage-1 artifacts.
	blk := blocking.Generate(ds.K1, ds.K2, blocking.DefaultOptions())
	am := attrmatch.FindMatches(ds.K1, ds.K2, blk.Initial, attrmatch.DefaultOptions())
	builder := simvec.NewBuilder(ds.K1, ds.K2, am, 0.9)
	candPairs := make([]pair.Pair, len(blk.Candidates))
	for i, c := range blk.Candidates {
		candPairs[i] = c.Pair
	}

	// Algorithm 1 on fractions of Mc (vector construction included, as in
	// the paper's analysis where it dominates).
	for _, f := range fractions {
		n := int(f * float64(len(candPairs)))
		subset := candPairs[:n]
		start := time.Now()
		pruner := simvec.NewPruner(subset, builder.All(subset))
		_ = pruner.Prune(subset, 4)
		el := time.Since(start)
		fmt.Fprintf(w, "Algorithm 1 @ %3.0f%% of Mc  (%6d pairs): %v\n", 100*f, n, el)
		out = append(out, ScalePoint{Algorithm: "Algorithm 1", Fraction: f, Elapsed: el})
	}

	// Algorithms 2 and 3 on fractions of Mrd.
	full := core.Prepare(ds.K1, ds.K2, core.DefaultConfig())
	for _, f := range fractions {
		n := int(f * float64(len(full.Retained)))
		subset := full.Retained[:n]
		cfg := core.DefaultConfig()
		sub := core.PrepareOnRetained(ds.K1, ds.K2, cfg, subset, full.Blocking)

		start := time.Now()
		inferred := sub.Prob.InferAll(cfg.Tau)
		el2 := time.Since(start)
		fmt.Fprintf(w, "Algorithm 2 @ %3.0f%% of Mrd (%6d pairs): %v\n", 100*f, n, el2)
		out = append(out, ScalePoint{Algorithm: "Algorithm 2", Fraction: f, Elapsed: el2})

		start = time.Now()
		cands := make([]selection.Candidate, 0, n)
		for i, v := range sub.Graph.Vertices() {
			inf := []int{i}
			for j := range inferred.SetIndexes(i) {
				inf = append(inf, j)
			}
			cands = append(cands, selection.Candidate{Pair: v, Prob: sub.Priors[v], Inferred: inf})
		}
		_ = (selection.Greedy{}).Select(cands, 10)
		el3 := time.Since(start)
		fmt.Fprintf(w, "Algorithm 3 @ %3.0f%% of Mrd (%6d pairs): %v\n", 100*f, n, el3)
		out = append(out, ScalePoint{Algorithm: "Algorithm 3", Fraction: f, Elapsed: el3})
	}
	return out
}
