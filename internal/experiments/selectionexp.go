package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/pair"
	"repro/internal/selection"
)

// CurvePoint is one point of a Figure 5 F1-vs-#questions curve.
type CurvePoint struct {
	Dataset   string
	Strategy  string
	Questions int
	F1        float64
}

// Figure5 reproduces "F1-score of Remp, MaxInf and MaxPr w.r.t. varying
// numbers of questions": µ = 1, ground-truth labels, F1 recorded at
// power-of-two question counts.
func Figure5(w io.Writer, seed int64) []CurvePoint {
	header(w, "Figure 5: F1 vs #questions for Remp / MaxInf / MaxPr (µ=1, oracle labels)")
	marks := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	var out []CurvePoint
	for _, ds := range datasets.All(seed) {
		for _, st := range []struct {
			name string
			s    selection.Strategy
		}{
			{"Remp", selection.Greedy{}},
			{"MaxInf", selection.MaxInf{}},
			{"MaxPr", selection.MaxPr{}},
		} {
			points := map[int]float64{}
			cfg := core.DefaultConfig()
			cfg.Mu = 1
			cfg.Strategy = st.s
			cfg.ClassifyIsolated = false
			cfg.Seed = seed
			// Every strategy runs to the same question budget so the
			// curves are comparable point-for-point, as in the paper.
			cfg.Budget = marks[len(marks)-1]
			cfg.ExhaustBudget = true
			cfg.Progress = func(q int, matches pair.Set) {
				for _, mark := range marks {
					if q == mark {
						points[q] = pair.Evaluate(matches, ds.Gold).F1
					}
				}
			}
			p := core.Prepare(ds.K1, ds.K2, cfg)
			res := p.Run(core.NewOracleAsker(ds.Gold.IsMatch))
			final := pair.Evaluate(res.Matches, ds.Gold).F1
			// Fill marks beyond the method's stopping point with its final
			// F1 (the curve flattens once it stops asking).
			qs := make([]int, 0, len(points))
			for q := range points {
				qs = append(qs, q)
			}
			sort.Ints(qs)
			fmt.Fprintf(w, "%-6s %-7s (stopped at %d questions, final F1 %s):", ds.Name, st.name, res.Questions, pct(final))
			last := 0.0
			for _, mark := range marks {
				if f1, ok := points[mark]; ok {
					last = f1
				} else if mark >= res.Questions {
					last = final
				}
				fmt.Fprintf(w, " %d:%s", mark, pct(last))
				out = append(out, CurvePoint{Dataset: ds.Name, Strategy: st.name, Questions: mark, F1: last})
			}
			fmt.Fprintln(w)
		}
	}
	return out
}

// BatchResult is one (dataset, µ) cell of Table VII.
type BatchResult struct {
	Dataset   string
	Mu        int
	F1        float64
	Questions int
	Loops     int
}

// Table7 reproduces "F1-score and number of questions with different
// question number thresholds per round" (µ ∈ {1, 5, 10, 20}, ground-truth
// labels).
func Table7(w io.Writer, seed int64) []BatchResult {
	header(w, "Table VII: F1 / #questions / #loops vs µ (oracle labels)")
	mus := []int{1, 5, 10, 20}
	fmt.Fprintf(w, "%-6s |", "")
	for _, mu := range mus {
		fmt.Fprintf(w, "  µ=%-2d: F1 #Q #L     |", mu)
	}
	fmt.Fprintln(w)
	var out []BatchResult
	for _, ds := range datasets.All(seed) {
		fmt.Fprintf(w, "%-6s |", ds.Name)
		for _, mu := range mus {
			cfg := core.DefaultConfig()
			cfg.Mu = mu
			cfg.Seed = seed
			p := core.Prepare(ds.K1, ds.K2, cfg)
			res := p.Run(core.NewOracleAsker(ds.Gold.IsMatch))
			f1 := pair.Evaluate(res.Matches, ds.Gold).F1
			fmt.Fprintf(w, " %6s %4d %3d |", pct(f1), res.Questions, res.Loops)
			out = append(out, BatchResult{Dataset: ds.Name, Mu: mu, F1: f1, Questions: res.Questions, Loops: res.Loops})
		}
		fmt.Fprintln(w)
	}
	return out
}
