package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment, writing its table/series to w.
type Runner func(w io.Writer, seed int64)

// Registry maps experiment IDs (as accepted by cmd/remp-bench) to their
// drivers, in paper order.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table3":    func(w io.Writer, s int64) { Table3(w, s) },
		"figure3":   func(w io.Writer, s int64) { Figure3(w, s) },
		"table4":    func(w io.Writer, s int64) { Table4(w, s) },
		"table5":    func(w io.Writer, s int64) { Table5(w, s) },
		"figure4":   func(w io.Writer, s int64) { Figure4(w, s) },
		"table6":    func(w io.Writer, s int64) { Table6(w, s) },
		"figure5":   func(w io.Writer, s int64) { Figure5(w, s) },
		"table7":    func(w io.Writer, s int64) { Table7(w, s) },
		"table8":    func(w io.Writer, s int64) { Table8(w, s) },
		"figure6":   func(w io.Writer, s int64) { Figure6(w, s) },
		"shards":    func(w io.Writer, s int64) { ShardScalability(w, s) },
		"prepare":   func(w io.Writer, s int64) { PreparePipeline(w, s, 20_000, true) },
		"deduction": func(w io.Writer, s int64) { Deduction(w, s) },
	}
}

// Order lists experiment IDs in the paper's presentation order, followed
// by the reproduction's own scaling experiments.
func Order() []string {
	return []string{
		"table3", "figure3", "table4", "table5", "figure4",
		"table6", "figure5", "table7", "table8", "figure6",
		"shards", "prepare", "deduction",
	}
}

// All runs every experiment in order.
func All(w io.Writer, seed int64) {
	reg := Registry()
	for _, id := range Order() {
		reg[id](w, seed)
	}
}

// Names returns the sorted experiment IDs (for usage messages).
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for k := range reg {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Describe returns a one-line description per experiment ID.
func Describe(id string) string {
	desc := map[string]string{
		"table3":    "Table III — F1 and #questions with (simulated) real workers",
		"figure3":   "Figure 3 — F1 and #questions vs worker error rate",
		"table4":    "Table IV — attribute matching effectiveness (1:1 ablation)",
		"table5":    "Table V — partial-order pruning effectiveness (k=4)",
		"figure4":   "Figure 4 — pair completeness vs k",
		"table6":    "Table VI — propagation from seed matches vs PARIS/SiGMa",
		"figure5":   "Figure 5 — question-selection benefit vs MaxInf/MaxPr",
		"table7":    "Table VII — batch size µ sweep",
		"table8":    "Table VIII — isolated-pair classifier",
		"figure6":   "Figure 6 — runtime scalability of Algorithms 1–3",
		"shards":    "Shard speedup — sharded loop runtime and equivalence on the clustered synthetic graph",
		"prepare":   "Pre-pipeline — indexed blocking + batched similarity vs the naive path on the scale dataset",
		"deduction": "Answer deduction — crowd questions saved by transitive closure, divergence-checked per dataset",
	}
	if d, ok := desc[id]; ok {
		return d
	}
	return fmt.Sprintf("unknown experiment %q", id)
}
