package experiments

import (
	"io"
	"strings"
	"testing"
)

// The experiment drivers are integration tests in their own right: each
// asserts the paper's qualitative claims on the synthetic suite. Heavier
// drivers (Table3/Figure3/Table6) are exercised at reduced shape here and
// in full by bench_test.go / cmd/remp-bench.

func TestTable4Shape(t *testing.T) {
	rows := Table4(io.Discard, 1)
	if len(rows) != 2 {
		t.Fatalf("Table4 rows = %d, want 2 (I-Y, D-Y)", len(rows))
	}
	for _, r := range rows {
		// 1:1 matching must improve precision (the paper's claim).
		if r.WithOneToOne.Precision < r.WithoutOneToOne.Precision {
			t.Errorf("%s: 1:1 precision %v < unconstrained %v",
				r.Dataset, r.WithOneToOne.Precision, r.WithoutOneToOne.Precision)
		}
	}
	// I-Y has only 4 reference matches and the paper finds them all.
	if rows[0].Dataset != "I-Y" || rows[0].WithOneToOne.F1 < 0.99 {
		t.Errorf("I-Y attribute matching F1 = %v, want ≈ 100%%", rows[0].WithOneToOne.F1)
	}
	// D-Y recall is partial (the paper reports 52.6%).
	if rows[1].WithOneToOne.Recall > 0.9 {
		t.Errorf("D-Y attribute recall = %v — expected the hard-dataset gap", rows[1].WithOneToOne.Recall)
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5(io.Discard, 1)
	if len(rows) != 4 {
		t.Fatalf("Table5 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RetainedPairs >= r.CandidatePairs {
			t.Errorf("%s: pruning kept everything (%d of %d)", r.Dataset, r.RetainedPairs, r.CandidatePairs)
		}
		// Pruning must preserve nearly all the completeness the candidates had.
		if r.RetainedPC < r.CandidatePC-0.05 {
			t.Errorf("%s: retained PC %v far below candidate PC %v", r.Dataset, r.RetainedPC, r.CandidatePC)
		}
		// The paper reports near-perfect (1–2%) monotone error rates.
		if r.MonotoneError > 0.10 {
			t.Errorf("%s: monotone error %v too high", r.Dataset, r.MonotoneError)
		}
		if r.Edges == 0 {
			t.Errorf("%s: ER graph has no edges", r.Dataset)
		}
	}
	// D-Y's candidates miss matches because of unlabeled entities.
	last := rows[3]
	if last.Dataset != "D-Y" || last.CandidatePC > 0.95 {
		t.Errorf("D-Y candidate PC = %v, want < 0.95 (missing labels)", last.CandidatePC)
	}
}

func TestFigure4Shape(t *testing.T) {
	points := Figure4(io.Discard, 1)
	if len(points) == 0 {
		t.Fatal("no points")
	}
	// PC must be monotone nondecreasing in k per dataset.
	byDS := map[string][]PCPoint{}
	for _, p := range points {
		byDS[p.Dataset] = append(byDS[p.Dataset], p)
	}
	for ds, ps := range byDS {
		for i := 1; i < len(ps); i++ {
			if ps[i].PC+1e-9 < ps[i-1].PC {
				t.Errorf("%s: PC decreased from k=%d (%v) to k=%d (%v)",
					ds, ps[i-1].K, ps[i-1].PC, ps[i].K, ps[i].PC)
			}
		}
		// Convergence: the last two ks should be nearly equal.
		n := len(ps)
		if ps[n-1].PC-ps[n-2].PC > 0.02 {
			t.Errorf("%s: PC not converged at large k", ds)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	rows := Table7(io.Discard, 1)
	byDS := map[string][]BatchResult{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for ds, rs := range byDS {
		// F1 stable across µ (within a few points).
		for i := 1; i < len(rs); i++ {
			if diff := rs[i].F1 - rs[0].F1; diff < -0.08 || diff > 0.08 {
				t.Errorf("%s: F1 unstable across µ: %v vs %v", ds, rs[i].F1, rs[0].F1)
			}
		}
		// Loops must shrink as µ grows.
		first, last := rs[0], rs[len(rs)-1]
		if last.Loops > first.Loops {
			t.Errorf("%s: loops grew with µ: %d → %d", ds, first.Loops, last.Loops)
		}
		// Questions must not shrink as µ grows.
		if last.Questions < first.Questions {
			t.Errorf("%s: questions shrank with µ: %d → %d", ds, first.Questions, last.Questions)
		}
	}
}

func TestTable8Shape(t *testing.T) {
	rows := Table8(io.Discard, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	frac := map[string]float64{}
	for _, r := range rows {
		frac[r.Dataset] = r.IsolatedFraction
	}
	// The isolation ordering of Table VIII: IIMB ≈ D-A ≪ I-Y < D-Y.
	if !(frac["IIMB"] < 0.05 && frac["D-A"] < 0.10) {
		t.Errorf("IIMB/D-A isolated fractions too high: %v / %v", frac["IIMB"], frac["D-A"])
	}
	if !(frac["I-Y"] > 0.10 && frac["D-Y"] > frac["I-Y"]) {
		t.Errorf("I-Y/D-Y isolation ordering wrong: %v / %v", frac["I-Y"], frac["D-Y"])
	}
	// On the isolation-heavy datasets the forest carries real weight.
	for _, r := range rows {
		if r.Dataset == "D-Y" && r.ForestF1 < 0.6 {
			t.Errorf("D-Y forest F1 = %v, want substantial", r.ForestF1)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	points := Figure6(io.Discard, 1)
	if len(points) == 0 {
		t.Fatal("no points")
	}
	algs := map[string]int{}
	for _, p := range points {
		algs[p.Algorithm]++
		if p.Elapsed <= 0 {
			t.Errorf("%s@%v: nonpositive elapsed", p.Algorithm, p.Fraction)
		}
	}
	for _, a := range []string{"Algorithm 1", "Algorithm 2", "Algorithm 3"} {
		if algs[a] != 4 {
			t.Errorf("%s measured %d times, want 4", a, algs[a])
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != len(Order()) {
		t.Errorf("registry has %d experiments, order lists %d", len(reg), len(Order()))
	}
	for _, id := range Order() {
		if _, ok := reg[id]; !ok {
			t.Errorf("ordered id %q missing from registry", id)
		}
		if strings.Contains(Describe(id), "unknown") {
			t.Errorf("no description for %q", id)
		}
	}
}

func TestSampleSeedsPortion(t *testing.T) {
	ds, err := dsByName("iimb")
	if err != nil {
		t.Fatal(err)
	}
	seeds := sampleSeeds(ds, 0.2, 1)
	want := int(0.2 * float64(ds.Gold.Size()))
	if len(seeds) != want {
		t.Errorf("seeds = %d, want %d", len(seeds), want)
	}
	for _, s := range seeds {
		if !ds.Gold.IsMatch(s) {
			t.Errorf("seed %v not in gold", s)
		}
	}
	// Deterministic for the same seed.
	again := sampleSeeds(ds, 0.2, 1)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("sampleSeeds not deterministic")
		}
	}
}
