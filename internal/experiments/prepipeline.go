package experiments

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"repro/internal/attrmatch"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// PrepareReport is the machine-readable result of the prepare experiment,
// merged into BENCH_remp.json by cmd/benchreport. NaiveNS/Speedup are
// zero when the naive cross-check was skipped (it is quadratic in hot
// spots and infeasible at the 1M scale the indexed path is built for).
type PrepareReport struct {
	Dataset    string `json:"dataset"`
	Entities   int    `json:"entities_per_kb"`
	Candidates int    `json:"candidates"`
	Initial    int    `json:"initial"`
	Retained   int    `json:"retained"`
	// PrepareNS is end-to-end core.Prepare wall time on the indexed path;
	// StageNS breaks out its block/similarity sub-stages.
	PrepareNS int64            `json:"prepare_ns"`
	StageNS   map[string]int64 `json:"stage_ns,omitempty"`
	// IndexedNS and NaiveNS time the pre-pipeline in isolation — candidate
	// generation, the simA matrix and similarity vectors, the three pieces
	// this PR flattened — on the indexed and retained-naive paths.
	IndexedNS  int64   `json:"indexed_ns"`
	NaiveNS    int64   `json:"naive_ns,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	Equivalent bool    `json:"equivalent"`
}

// NaiveFeasibleLimit bounds the automatic naive cross-check: the retained
// string path marks every token-sharing pair in a Go map, which is
// memory- and time-quadratic in posting activity and stops being runnable
// long before 1M entities. cmd/remp-bench enables the cross-check
// automatically at or below this size.
const NaiveFeasibleLimit = 200_000

// PreparePipeline measures the indexed pre-pipeline on the scale-<n>
// stress dataset and, when withNaive, cross-checks every intermediate
// against the retained naive implementations (byte equality) and reports
// the speedup.
func PreparePipeline(w io.Writer, seed int64, n int, withNaive bool) *PrepareReport {
	header(w, fmt.Sprintf("Pre-pipeline — indexed blocking + batched similarity (scale-%d, seed %d)", n, seed))
	ds := datasets.Scale(seed, n)
	rep := &PrepareReport{Dataset: ds.Name, Entities: n, Equivalent: !withNaive}

	// End-to-end Prepare with stage tracing on the indexed path.
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	tr := obs.NewLoopTrace(obs.WallClock())
	cfg.Obs = &obs.Pipeline{Trace: tr}
	t0 := time.Now()
	p := core.Prepare(ds.K1, ds.K2, cfg)
	rep.PrepareNS = time.Since(t0).Nanoseconds()
	rep.StageNS = tr.Totals()
	rep.Candidates = len(p.Blocking.Candidates)
	rep.Initial = len(p.Blocking.Initial)
	rep.Retained = len(p.Retained)
	fmt.Fprintf(w, "entities/KB %d   candidates %d   initial %d   retained %d\n",
		n, rep.Candidates, rep.Initial, rep.Retained)
	fmt.Fprintf(w, "core.Prepare      %12v  (block %v, similarity %v)\n",
		time.Duration(rep.PrepareNS).Round(time.Millisecond),
		time.Duration(rep.StageNS["block"]).Round(time.Millisecond),
		time.Duration(rep.StageNS["similarity"]).Round(time.Millisecond))

	// Isolated pre-pipeline timing, indexed path (as Prepare runs it).
	sched := core.NewScheduler(0)
	bOpts := blocking.Options{Threshold: cfg.LabelSimThreshold, Runner: sched}
	amOpts := attrmatch.DefaultOptions()
	amOpts.LiteralThreshold = cfg.LiteralThreshold
	amOpts.Runner = sched
	t0 = time.Now()
	blk := blocking.Generate(ds.K1, ds.K2, bOpts)
	sims := attrmatch.Similarities(ds.K1, ds.K2, blk.Initial, amOpts)
	matches := attrmatch.FindMatches(ds.K1, ds.K2, blk.Initial, amOpts)
	builder := simvec.NewBuilder(ds.K1, ds.K2, matches, cfg.LiteralThreshold)
	builder.SetRunner(sched)
	cands := make([]pair.Pair, len(blk.Candidates))
	for i, c := range blk.Candidates {
		cands[i] = c.Pair
	}
	vecs := builder.All(cands)
	rep.IndexedNS = time.Since(t0).Nanoseconds()
	fmt.Fprintf(w, "pre-pipeline      %12v  (indexed)\n", time.Duration(rep.IndexedNS).Round(time.Millisecond))

	if !withNaive {
		fmt.Fprintf(w, "naive cross-check skipped (n > %d or disabled)\n", NaiveFeasibleLimit)
		return rep
	}

	t0 = time.Now()
	nblk := blocking.GenerateNaive(ds.K1, ds.K2, blocking.Options{Threshold: cfg.LabelSimThreshold})
	nsims := attrmatch.SimilaritiesNaive(ds.K1, ds.K2, nblk.Initial, amOpts)
	nbuilder := simvec.NewBuilder(ds.K1, ds.K2, matches, cfg.LiteralThreshold)
	nvecs := make([]simvec.Vector, len(cands))
	for i, q := range cands {
		nvecs[i] = nbuilder.Vector(q)
	}
	rep.NaiveNS = time.Since(t0).Nanoseconds()
	rep.Speedup = float64(rep.NaiveNS) / float64(rep.IndexedNS)

	rep.Equivalent = reflect.DeepEqual(blk.Candidates, nblk.Candidates) &&
		reflect.DeepEqual(blk.Initial, nblk.Initial) &&
		reflect.DeepEqual(blk.Priors, nblk.Priors) &&
		reflect.DeepEqual(sims, nsims) &&
		reflect.DeepEqual(vecs, nvecs)
	fmt.Fprintf(w, "pre-pipeline      %12v  (naive)\n", time.Duration(rep.NaiveNS).Round(time.Millisecond))
	fmt.Fprintf(w, "speedup           %12.2fx  byte-identical: %v\n", rep.Speedup, rep.Equivalent)
	if !rep.Equivalent {
		fmt.Fprintf(w, "WARNING: indexed and naive pre-pipelines diverged\n")
	}
	return rep
}
