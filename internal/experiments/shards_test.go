package experiments

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
)

// TestShardedEquivalenceOnBuiltinDatasets is the acceptance gate for the
// sharded pipeline: on every built-in dataset suite, a sharded Resolve
// must produce exactly the matches and non-matches of the unsharded run —
// the cross-shard monotonicity check of internal/eval — and therefore the
// same precision/recall/F1.
func TestShardedEquivalenceOnBuiltinDatasets(t *testing.T) {
	for _, name := range datasets.Names() {
		t.Run(name, func(t *testing.T) {
			ds, err := datasets.ByName(name, DefaultSeed)
			if err != nil {
				t.Fatal(err)
			}
			run := func(shards int) *core.Result {
				cfg := core.DefaultConfig()
				cfg.Shards = shards
				p := core.Prepare(ds.K1, ds.K2, cfg)
				return p.Run(core.NewOracleAsker(ds.Gold.IsMatch))
			}
			ref := run(1)
			refOut := eval.Outcome{Matches: ref.Matches, NonMatches: ref.NonMatches}
			for _, shards := range []int{4} {
				res := run(shards)
				if err := eval.ShardDivergence(refOut, eval.Outcome{Matches: res.Matches, NonMatches: res.NonMatches}); err != nil {
					t.Errorf("%d shards: %v", shards, err)
				}
			}
		})
	}
}

// TestShardScalabilityReport sanity-checks the shards experiment on a
// reduced clustered graph: every point must be equivalent and the report
// shape complete (the CI bench job merges it into BENCH_remp.json).
func TestShardScalabilityReport(t *testing.T) {
	report := shardScalability(io.Discard, DefaultSeed, 24, 16)
	if len(report.Points) != 4 {
		t.Fatalf("report has %d points, want 4", len(report.Points))
	}
	if report.Vertices == 0 || report.Edges == 0 || report.Components == 0 {
		t.Errorf("report missing graph stats: %+v", report)
	}
	for _, pt := range report.Points {
		if !pt.Equivalent {
			t.Errorf("shard count %d diverged from the monolithic run", pt.Shards)
		}
		if pt.LoopNS <= 0 || pt.Questions <= 0 {
			t.Errorf("degenerate point: %+v", pt)
		}
	}
}
