package experiments

import (
	"fmt"
	"io"

	"repro/internal/attrmatch"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/pair"
	"repro/internal/simvec"
)

// AttrMatchResult is one row of Table IV.
type AttrMatchResult struct {
	Dataset                       string
	RefMatches                    int
	WithOneToOne, WithoutOneToOne pair.PRF
}

// Table4 reproduces "Effectiveness of attribute matching": precision,
// recall and F1 of attribute matching with and without the 1:1 constraint
// on I-Y and D-Y (the datasets with attribute gold standards).
func Table4(w io.Writer, seed int64) []AttrMatchResult {
	header(w, "Table IV: Effectiveness of attribute matching")
	fmt.Fprintf(w, "%-6s %5s | %-26s | %-26s\n", "", "#Ref", "Remp (1:1)", "Remp w/o 1:1 matching")
	var out []AttrMatchResult
	for _, name := range []string{"i-y", "d-y"} {
		ds, err := datasets.ByName(name, seed)
		if err != nil {
			panic(err)
		}
		res := attrMatchOn(ds)
		fmt.Fprintf(w, "%-6s %5d | P=%s R=%s F1=%s | P=%s R=%s F1=%s\n",
			ds.Name, res.RefMatches,
			pct(res.WithOneToOne.Precision), pct(res.WithOneToOne.Recall), pct(res.WithOneToOne.F1),
			pct(res.WithoutOneToOne.Precision), pct(res.WithoutOneToOne.Recall), pct(res.WithoutOneToOne.F1))
		out = append(out, res)
	}
	return out
}

func attrMatchOn(ds *datasets.Dataset) AttrMatchResult {
	blk := blocking.Generate(ds.K1, ds.K2, blocking.DefaultOptions())
	gold := map[[2]string]bool{}
	for _, r := range ds.AttrGold {
		gold[[2]string{r.A1, r.A2}] = true
	}
	score := func(matches []attrmatch.Match) pair.PRF {
		tp := 0
		for _, m := range matches {
			if gold[[2]string{ds.K1.AttrName(m.A1), ds.K2.AttrName(m.A2)}] {
				tp++
			}
		}
		return pair.FromCounts(tp, len(matches)-tp, len(ds.AttrGold)-tp)
	}
	opts := attrmatch.DefaultOptions()
	with := attrmatch.FindMatches(ds.K1, ds.K2, blk.Initial, opts)
	opts.OneToOne = false
	without := attrmatch.FindMatches(ds.K1, ds.K2, blk.Initial, opts)
	return AttrMatchResult{
		Dataset:         ds.Name,
		RefMatches:      len(ds.AttrGold),
		WithOneToOne:    score(with),
		WithoutOneToOne: score(without),
	}
}

// PruningResult is one row of Table V.
type PruningResult struct {
	Dataset        string
	CandidatePairs int
	CandidatePC    float64
	RetainedPairs  int
	ReductionRatio float64
	RetainedPC     float64
	Edges          int
	MonotoneError  float64
}

// Table5 reproduces "Effectiveness of partial order based pruning" with
// k = 4: candidate/retained pair counts, pair completeness, reduction
// ratio, ER-graph edge count and the optimal-monotone-classifier error.
func Table5(w io.Writer, seed int64) []PruningResult {
	header(w, "Table V: Effectiveness of partial-order-based pruning (k=4)")
	fmt.Fprintf(w, "%-6s | %9s %7s | %9s %7s %7s | %8s %9s\n",
		"", "#Cand", "PC", "#Retained", "RR", "PC", "#Edges", "ErrRate")
	var out []PruningResult
	for _, ds := range datasets.All(seed) {
		res := pruningOn(ds, 4)
		fmt.Fprintf(w, "%-6s | %9d %7s | %9d %7s %7s | %8d %9s\n",
			ds.Name, res.CandidatePairs, pct(res.CandidatePC),
			res.RetainedPairs, pct(res.ReductionRatio), pct(res.RetainedPC),
			res.Edges, pct(res.MonotoneError))
		out = append(out, res)
	}
	return out
}

func pruningOn(ds *datasets.Dataset, k int) PruningResult {
	cfg := core.DefaultConfig()
	cfg.K = k
	p := core.Prepare(ds.K1, ds.K2, cfg)
	candPairs := make([]pair.Pair, len(p.Blocking.Candidates))
	for i, c := range p.Blocking.Candidates {
		candPairs[i] = c.Pair
	}
	vectors := make([]simvec.Vector, len(p.Retained))
	for i, q := range p.Retained {
		vectors[i] = p.Pruner.VectorOf(q)
	}
	return PruningResult{
		Dataset:        ds.Name,
		CandidatePairs: len(candPairs),
		CandidatePC:    pair.PairCompleteness(pair.NewSet(candPairs...), ds.Gold),
		RetainedPairs:  len(p.Retained),
		ReductionRatio: pair.ReductionRatio(len(candPairs), len(p.Retained)),
		RetainedPC:     pair.PairCompleteness(pair.NewSet(p.Retained...), ds.Gold),
		Edges:          p.Graph.NumEdges(),
		MonotoneError:  eval.OptimalMonotoneError(p.Retained, vectors, ds.Gold),
	}
}

// PCPoint is one point of Figure 4.
type PCPoint struct {
	Dataset string
	K       int
	PC      float64
}

// Figure4 reproduces "Pair completeness w.r.t. k-nearest neighbors":
// retained-match pair completeness as k sweeps 1..13.
func Figure4(w io.Writer, seed int64) []PCPoint {
	header(w, "Figure 4: Pair completeness vs k-nearest neighbors")
	ks := []int{1, 2, 4, 7, 10, 13}
	fmt.Fprintf(w, "%-6s |", "")
	for _, k := range ks {
		fmt.Fprintf(w, " k=%-5d", k)
	}
	fmt.Fprintln(w)
	var out []PCPoint
	for _, ds := range datasets.All(seed) {
		blk := blocking.Generate(ds.K1, ds.K2, blocking.DefaultOptions())
		am := attrmatch.FindMatches(ds.K1, ds.K2, blk.Initial, attrmatch.DefaultOptions())
		builder := simvec.NewBuilder(ds.K1, ds.K2, am, 0.9)
		candPairs := make([]pair.Pair, len(blk.Candidates))
		for i, c := range blk.Candidates {
			candPairs[i] = c.Pair
		}
		pruner := simvec.NewPruner(candPairs, builder.All(candPairs))
		fmt.Fprintf(w, "%-6s |", ds.Name)
		for _, k := range ks {
			kept := pruner.Prune(candPairs, k)
			pc := pair.PairCompleteness(pair.NewSet(kept...), ds.Gold)
			fmt.Fprintf(w, " %-7s", pct(pc))
			out = append(out, PCPoint{Dataset: ds.Name, K: k, PC: pc})
		}
		fmt.Fprintln(w)
	}
	return out
}
