package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/baselines/corleone"
	"repro/internal/baselines/hike"
	"repro/internal/baselines/power"
	"repro/internal/crowd"
	"repro/internal/datasets"
	"repro/internal/pair"
)

// MethodResult is one (dataset, method) cell of Table III / Figure 3.
type MethodResult struct {
	Dataset   string
	Method    string
	F1        float64
	Precision float64
	Recall    float64
	Questions int
}

// crowdMethods returns the Table III competitor set.
func crowdMethods() []baselines.Method {
	return []baselines.Method{hike.Method{}, power.Method{}, corleone.Method{}}
}

// runRemp executes Remp end to end against the given platform config.
func runRemp(ds *datasets.Dataset, cc crowd.Config, seed int64) MethodResult {
	p := prepare(ds, seed)
	platform := newPlatform(ds, cc)
	res := p.Run(platform)
	prf := pair.Evaluate(res.Matches, ds.Gold)
	return MethodResult{
		Dataset: ds.Name, Method: "Remp",
		F1: prf.F1, Precision: prf.Precision, Recall: prf.Recall,
		Questions: res.Questions,
	}
}

// runBaseline executes one competitor against the given platform config.
func runBaseline(ds *datasets.Dataset, m baselines.Method, cc crowd.Config, seed int64) MethodResult {
	p := prepare(ds, seed)
	platform := newPlatform(ds, cc)
	in := baselines.FromPrepared(p, platform, nil, seed)
	out := m.Run(in)
	prf := pair.Evaluate(out.Matches, ds.Gold)
	return MethodResult{
		Dataset: ds.Name, Method: m.Name(),
		F1: prf.F1, Precision: prf.Precision, Recall: prf.Recall,
		Questions: out.Questions,
	}
}

// Table3 reproduces "F1-score and number of questions with real workers":
// Remp vs HIKE, POWER and Corleone on the four datasets under the
// simulated MTurk-quality worker pool.
func Table3(w io.Writer, seed int64) []MethodResult {
	header(w, "Table III: F1-score and number of questions with (simulated) real workers")
	fmt.Fprintf(w, "%-6s | %-8s %6s | %-8s %6s | %-8s %6s | %-8s %6s\n",
		"", "Remp F1", "#Q", "HIKE F1", "#Q", "POWER", "#Q", "Corleone", "#Q")
	var out []MethodResult
	for _, ds := range datasets.All(seed) {
		row := []MethodResult{runRemp(ds, realWorkerConfig(seed), seed)}
		for _, m := range crowdMethods() {
			row = append(row, runBaseline(ds, m, realWorkerConfig(seed), seed))
		}
		fmt.Fprintf(w, "%-6s | %7s %7d | %7s %7d | %7s %7d | %7s %7d\n",
			ds.Name,
			pct(row[0].F1), row[0].Questions,
			pct(row[1].F1), row[1].Questions,
			pct(row[2].F1), row[2].Questions,
			pct(row[3].F1), row[3].Questions)
		out = append(out, row...)
	}
	return out
}

// Figure3 reproduces "F1-score and number of questions w.r.t. simulated
// workers of varying error rates" (0.05, 0.15, 0.25).
func Figure3(w io.Writer, seed int64) []MethodResult {
	header(w, "Figure 3: F1 and #questions vs simulated worker error rate")
	var out []MethodResult
	for _, rate := range []float64{0.05, 0.15, 0.25} {
		fmt.Fprintf(w, "error rate %.2f:\n", rate)
		fmt.Fprintf(w, "  %-6s | %-8s %6s | %-8s %6s | %-8s %6s | %-8s %6s\n",
			"", "Remp F1", "#Q", "HIKE F1", "#Q", "POWER", "#Q", "Corleone", "#Q")
		for _, ds := range datasets.All(seed) {
			row := []MethodResult{runRemp(ds, errorRateConfig(rate, seed), seed)}
			for _, m := range crowdMethods() {
				row = append(row, runBaseline(ds, m, errorRateConfig(rate, seed), seed))
			}
			fmt.Fprintf(w, "  %-6s | %7s %7d | %7s %7d | %7s %7d | %7s %7d\n",
				ds.Name,
				pct(row[0].F1), row[0].Questions,
				pct(row[1].F1), row[1].Questions,
				pct(row[2].F1), row[2].Questions,
				pct(row[3].F1), row[3].Questions)
			out = append(out, row...)
		}
	}
	return out
}
