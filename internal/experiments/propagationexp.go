package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/baselines/paris"
	"repro/internal/baselines/sigma"
	"repro/internal/datasets"
	"repro/internal/pair"
)

// SeedResult is one (dataset, method, portion) cell of Table VI.
type SeedResult struct {
	Dataset string
	Method  string
	Portion float64
	F1      float64
}

// Table6 reproduces "F1-score w.r.t. varying portions of seed matches":
// Remp's propagation (no crowd, no isolated-pair classifier) against
// PARIS and SiGMa, with {20,40,60,80}% of the gold matches as seeds,
// averaged over five samples as in the paper.
func Table6(w io.Writer, seed int64) []SeedResult {
	const repeats = 5
	portions := []float64{0.2, 0.4, 0.6, 0.8}
	header(w, "Table VI: F1 vs portion of seed matches (mean of 5 runs)")
	fmt.Fprintf(w, "%-6s %-6s |", "", "")
	for _, pt := range portions {
		fmt.Fprintf(w, " %4.0f%%  ", 100*pt)
	}
	fmt.Fprintln(w)

	var out []SeedResult
	for _, ds := range datasets.All(seed) {
		p := prepare(ds, seed)
		in := baselines.FromPrepared(p, nil, nil, seed)

		methods := []struct {
			name string
			run  func(seeds []pair.Pair) pair.Set
		}{
			{"Remp", func(seeds []pair.Pair) pair.Set { return p.PropagateFromSeeds(seeds) }},
			{"PARIS", func(seeds []pair.Pair) pair.Set {
				in2 := *in
				in2.Seeds = seeds
				return paris.Method{}.Run(&in2).Matches
			}},
			{"SiGMa", func(seeds []pair.Pair) pair.Set {
				in2 := *in
				in2.Seeds = seeds
				return sigma.Method{}.Run(&in2).Matches
			}},
		}
		for _, m := range methods {
			fmt.Fprintf(w, "%-6s %-6s |", ds.Name, m.name)
			for _, portion := range portions {
				sum := 0.0
				for r := 0; r < repeats; r++ {
					seeds := sampleSeeds(ds, portion, seed+int64(r)*101)
					matches := m.run(seeds)
					sum += pair.Evaluate(matches, ds.Gold).F1
				}
				f1 := sum / repeats
				fmt.Fprintf(w, " %-6s", pct(f1))
				out = append(out, SeedResult{Dataset: ds.Name, Method: m.name, Portion: portion, F1: f1})
			}
			fmt.Fprintln(w)
		}
	}
	return out
}
