// Package experiments contains one driver per table and figure in the
// paper's evaluation section (§VIII). Each driver regenerates the
// corresponding artifact on the synthetic dataset suite and prints the
// same rows/series the paper reports; cmd/remp-bench and the root
// bench_test.go both dispatch into this package. Absolute numbers differ
// from the paper (the substrate is a laptop-scale simulator, not MTurk +
// the full dumps) but the comparative shape is the reproduction target;
// EXPERIMENTS.md records paper-versus-measured values side by side.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/crowd"
	"repro/internal/datasets"
	"repro/internal/pair"
)

// DefaultSeed is used by cmd/remp-bench and the benches.
const DefaultSeed int64 = 1

// realWorkerConfig models the paper's MTurk setup: qualification-filtered
// workers (≥95% approval) answering each question five times.
func realWorkerConfig(seed int64) crowd.Config {
	return crowd.Config{
		NumWorkers:         50,
		WorkersPerQuestion: 5,
		QualityLow:         0.93,
		QualityHigh:        0.99,
		Seed:               seed,
	}
}

// errorRateConfig models the simulated-worker experiments (Figure 3).
func errorRateConfig(errorRate float64, seed int64) crowd.Config {
	return crowd.Config{
		NumWorkers:         50,
		WorkersPerQuestion: 5,
		ErrorRate:          errorRate,
		Seed:               seed,
	}
}

// newPlatform builds the simulated crowd for a dataset.
func newPlatform(ds *datasets.Dataset, cfg crowd.Config) *crowd.Platform {
	return crowd.NewPlatform(ds.Gold.IsMatch, cfg)
}

// sampleSeeds draws a portion of the gold matches (Table VI).
func sampleSeeds(ds *datasets.Dataset, portion float64, seed int64) []pair.Pair {
	all := ds.Gold.Matches()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(all))
	n := int(portion * float64(len(all)))
	out := make([]pair.Pair, 0, n)
	for _, i := range perm[:n] {
		out = append(out, all[i])
	}
	return out
}

// prepare runs Remp's stage 1+2 with the paper's uniform settings.
func prepare(ds *datasets.Dataset, seed int64) *core.Prepared {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return core.Prepare(ds.K1, ds.K2, cfg)
}

// header prints a rule-delimited table title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, rule(len(title)))
}

func rule(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// dsByName wraps datasets.ByName with the default seed (test helper).
func dsByName(name string) (*datasets.Dataset, error) {
	return datasets.ByName(name, DefaultSeed)
}
