package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasets"
	"repro/internal/pair"
)

// IsolatedResult is one row of Table VIII.
type IsolatedResult struct {
	Dataset          string
	IsolatedFraction float64 // share of gold matches that are isolated vertices
	RempF1           float64 // Remp's overall F1 (with classifier)
	ForestF1         float64 // F1 of the forest on the isolated gold subset
}

// Table8 reproduces "F1-score of inference on isolated entity pairs": the
// share of isolated matches per dataset, Remp's overall F1, and the
// random forest's F1 restricted to the isolated pairs, under the
// real-worker platform.
func Table8(w io.Writer, seed int64) []IsolatedResult {
	header(w, "Table VIII: inference on isolated entity pairs")
	fmt.Fprintf(w, "%-6s | %10s | %8s | %13s\n", "", "Isolated%", "Remp F1", "Forest F1")
	var out []IsolatedResult
	for _, ds := range datasets.All(seed) {
		p := prepare(ds, seed)
		platform := newPlatform(ds, realWorkerConfig(seed))
		res := p.Run(platform)

		// Isolated gold matches: gold pairs that exist as isolated graph
		// vertices (plus gold pairs not in the graph at all cannot be
		// counted either way — the paper measures within the ER graph).
		isolated := pair.NewSet(p.Graph.Isolated()...)
		goldIso := 0
		for _, m := range ds.Gold.Matches() {
			if isolated.Has(m) {
				goldIso++
			}
		}
		frac := 0.0
		if ds.Gold.Size() > 0 {
			frac = float64(goldIso) / float64(ds.Gold.Size())
		}

		// Forest F1 on the isolated subset: predictions vs isolated gold.
		tp, fp := 0, 0
		for q := range res.IsolatedPredicted {
			if ds.Gold.IsMatch(q) {
				tp++
			} else {
				fp++
			}
		}
		forest := pair.FromCounts(tp, fp, goldIso-tp)
		overall := pair.Evaluate(res.Matches, ds.Gold)

		fmt.Fprintf(w, "%-6s | %10s | %8s | %13s\n",
			ds.Name, pct(frac), pct(overall.F1), pct(forest.F1))
		out = append(out, IsolatedResult{
			Dataset:          ds.Name,
			IsolatedFraction: frac,
			RempF1:           overall.F1,
			ForestF1:         forest.F1,
		})
	}
	return out
}
