package attrmatch

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

type wideRunner struct{}

func (wideRunner) ForEach(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

var literalPool = []string{
	"", "hello world", "42", " 42 ", "3.14", "1999", "2001-05-03",
	"café naïve", "北京", "a b c", "the running cities", "O'Neill",
}

func randAttrKB(r *rand.Rand, name string, n, nAttrs int) *kb.KB {
	k := kb.New(name)
	attrs := make([]kb.AttrID, nAttrs)
	for a := 0; a < nAttrs; a++ {
		attrs[a] = k.AddAttr(fmt.Sprintf("attr%d", a))
	}
	for i := 0; i < n; i++ {
		u := k.AddEntity(fmt.Sprintf("%s:e%d", name, i))
		for _, a := range attrs {
			for v := r.Intn(3); v > 0; v-- {
				k.AddAttrTriple(u, a, literalPool[r.Intn(len(literalPool))])
			}
		}
	}
	return k
}

// TestSimilaritiesMatchesNaive: the batched simA matrix must be
// byte-identical to the retained naive implementation — float
// accumulation order included — serial and parallel.
func TestSimilaritiesMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		k1 := randAttrKB(r, "k1", 15, 3)
		k2 := randAttrKB(r, "k2", 15, 4)
		var min []pair.Pair
		for i := 0; i < 10; i++ {
			min = append(min, pair.Pair{
				U1: kb.EntityID(r.Intn(k1.NumEntities())),
				U2: kb.EntityID(r.Intn(k2.NumEntities())),
			})
		}
		opts := DefaultOptions()
		want := SimilaritiesNaive(k1, k2, min, opts)

		got := Similarities(k1, k2, min, opts)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed=%d serial: simA diverges\nnaive:   %v\nbatched: %v", seed, want, got)
		}

		opts.Runner = wideRunner{}
		got = Similarities(k1, k2, min, opts)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed=%d parallel: simA diverges\nnaive:   %v\nbatched: %v", seed, want, got)
		}

		// FindMatches consumes the batched matrix; empty min must also agree.
		if !reflect.DeepEqual(SimilaritiesNaive(k1, k2, nil, opts), Similarities(k1, k2, nil, opts)) {
			t.Fatalf("seed=%d: empty-min matrices diverge", seed)
		}
	}
}
