// Package attrmatch implements attribute matching (§IV-C): the similarity
// simA(a1,a2) between attributes of two KBs is the average extended-Jaccard
// similarity (simL) of their value sets across the initial entity matches
// Min (Eq. 1); a global 1:1 matching is then selected with the Hungarian
// algorithm, as widely done in ontology matching.
package attrmatch

import (
	"sort"

	"repro/internal/assign"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/strsim"
)

// Match is a matched attribute pair with its similarity score.
type Match struct {
	A1  kb.AttrID
	A2  kb.AttrID
	Sim float64
}

// Options configures attribute matching.
type Options struct {
	// LiteralThreshold is the internal literal-similarity threshold of
	// simL; the paper sets 0.9 "to guarantee high precision".
	LiteralThreshold float64
	// MinSimilarity is the minimal simA for a pair to participate in the
	// 1:1 selection at all.
	MinSimilarity float64
	// OneToOne enables the global 1:1 constraint (Hungarian). Disabling it
	// reproduces the "Remp w/o 1:1 matching" ablation of Table IV, which
	// keeps, for each attribute in K1, every counterpart above
	// MinSimilarity.
	OneToOne bool
}

// DefaultOptions mirrors the paper (threshold 0.9, 1:1 on).
func DefaultOptions() Options {
	return Options{LiteralThreshold: 0.9, MinSimilarity: 0.05, OneToOne: true}
}

// Similarities computes the full simA matrix between the attributes of k1
// and k2 over the initial matches min (Eq. 1). Entry [a1][a2] is zero when
// no initial match has values for either attribute.
func Similarities(k1, k2 *kb.KB, min []pair.Pair, opts Options) [][]float64 {
	n1, n2 := k1.NumAttrs(), k2.NumAttrs()
	sum := make([][]float64, n1)
	cnt := make([][]int, n1)
	for i := range sum {
		sum[i] = make([]float64, n2)
		cnt[i] = make([]int, n2)
	}
	for _, m := range min {
		attrs1 := k1.Attrs(m.U1)
		attrs2 := k2.Attrs(m.U2)
		for _, a1 := range attrs1 {
			v1 := k1.AttrValues(m.U1, a1)
			for _, a2 := range attrs2 {
				v2 := k2.AttrValues(m.U2, a2)
				if len(v1) == 0 && len(v2) == 0 {
					continue
				}
				sum[a1][a2] += strsim.SimL(v1, v2, opts.LiteralThreshold)
				cnt[a1][a2]++
			}
		}
	}
	for i := range sum {
		for j := range sum[i] {
			if cnt[i][j] > 0 {
				sum[i][j] /= float64(cnt[i][j])
			}
		}
	}
	return sum
}

// FindMatches runs attribute matching end to end and returns the matches
// sorted by (A1, A2).
func FindMatches(k1, k2 *kb.KB, min []pair.Pair, opts Options) []Match {
	if opts.LiteralThreshold == 0 {
		opts.LiteralThreshold = 0.9
	}
	sims := Similarities(k1, k2, min, opts)
	var out []Match
	if opts.OneToOne {
		// Zero out entries under MinSimilarity so Hungarian leaves them
		// unassigned.
		W := make([][]float64, len(sims))
		for i := range sims {
			W[i] = make([]float64, len(sims[i]))
			for j, s := range sims[i] {
				if s >= opts.MinSimilarity {
					W[i][j] = s
				}
			}
		}
		rowMatch := assign.Hungarian(W)
		for a1, a2 := range rowMatch {
			if a2 >= 0 {
				out = append(out, Match{A1: kb.AttrID(a1), A2: kb.AttrID(a2), Sim: sims[a1][a2]})
			}
		}
	} else {
		for a1 := range sims {
			for a2, s := range sims[a1] {
				if s >= opts.MinSimilarity {
					out = append(out, Match{A1: kb.AttrID(a1), A2: kb.AttrID(a2), Sim: s})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A1 != out[j].A1 {
			return out[i].A1 < out[j].A1
		}
		return out[i].A2 < out[j].A2
	})
	return out
}
