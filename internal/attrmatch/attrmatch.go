// Package attrmatch implements attribute matching (§IV-C): the similarity
// simA(a1,a2) between attributes of two KBs is the average extended-Jaccard
// similarity (simL) of their value sets across the initial entity matches
// Min (Eq. 1); a global 1:1 matching is then selected with the Hungarian
// algorithm, as widely done in ontology matching.
package attrmatch

import (
	"runtime"
	"sort"

	"repro/internal/assign"
	"repro/internal/kb"
	"repro/internal/pair"
	"repro/internal/strsim"
)

// Match is a matched attribute pair with its similarity score.
type Match struct {
	A1  kb.AttrID
	A2  kb.AttrID
	Sim float64
}

// Runner runs n independent tasks, possibly in parallel. *core.Scheduler
// satisfies it; attrmatch declares its own interface because core imports
// this package.
type Runner interface {
	ForEach(n int, fn func(i int))
}

// Options configures attribute matching.
type Options struct {
	// LiteralThreshold is the internal literal-similarity threshold of
	// simL; the paper sets 0.9 "to guarantee high precision".
	LiteralThreshold float64
	// MinSimilarity is the minimal simA for a pair to participate in the
	// 1:1 selection at all.
	MinSimilarity float64
	// OneToOne enables the global 1:1 constraint (Hungarian). Disabling it
	// reproduces the "Remp w/o 1:1 matching" ablation of Table IV, which
	// keeps, for each attribute in K1, every counterpart above
	// MinSimilarity.
	OneToOne bool
	// Runner, when non-nil, computes the per-match simL contributions in
	// parallel. The simA matrix is byte-identical either way (the float
	// accumulation order is preserved); nil means serial.
	Runner Runner
}

// DefaultOptions mirrors the paper (threshold 0.9, 1:1 on).
func DefaultOptions() Options {
	return Options{LiteralThreshold: 0.9, MinSimilarity: 0.05, OneToOne: true}
}

// Similarities computes the full simA matrix between the attributes of k1
// and k2 over the initial matches min (Eq. 1). Entry [a1][a2] is zero when
// no initial match has values for either attribute.
//
// It runs the batched path: every needed value set is interned into a
// literal corpus once, the per-match simL contributions are computed —
// in parallel when opts.Runner is set — and then accumulated serially in
// the original match order, so the floats are byte-identical to
// SimilaritiesNaive.
func Similarities(k1, k2 *kb.KB, min []pair.Pair, opts Options) [][]float64 {
	n1, n2 := k1.NumAttrs(), k2.NumAttrs()
	sum := make([][]float64, n1)
	cnt := make([][]int, n1)
	for i := range sum {
		sum[i] = make([]float64, n2)
		cnt[i] = make([]int, n2)
	}
	if len(min) == 0 {
		return sum
	}

	// Serial interning pass: the corpus is mutated here and only read by
	// the scoring pass below.
	corpus := strsim.NewCorpus()
	lits1 := make(map[valKey][]strsim.LitID)
	lits2 := make(map[valKey][]strsim.LitID)
	for _, m := range min {
		for _, a1 := range k1.Attrs(m.U1) {
			key := valKey{u: m.U1, a: a1}
			if _, ok := lits1[key]; !ok {
				lits1[key] = corpus.InternAll(k1.AttrValues(m.U1, a1))
			}
		}
		for _, a2 := range k2.Attrs(m.U2) {
			key := valKey{u: m.U2, a: a2}
			if _, ok := lits2[key]; !ok {
				lits2[key] = corpus.InternAll(k2.AttrValues(m.U2, a2))
			}
		}
	}

	// Contribution pass over contiguous chunks of min: each chunk records
	// its (a1, a2, simL) contributions in match order.
	chunks := chunkRanges(len(min), opts.Runner)
	parts := make([][]contrib, len(chunks))
	runAll(opts.Runner, len(chunks), func(ci int) {
		var sc strsim.MatchScratch
		var out []contrib
		for i := chunks[ci].lo; i < chunks[ci].hi; i++ {
			m := min[i]
			attrs1 := k1.Attrs(m.U1)
			attrs2 := k2.Attrs(m.U2)
			for _, a1 := range attrs1 {
				v1 := lits1[valKey{u: m.U1, a: a1}]
				for _, a2 := range attrs2 {
					v2 := lits2[valKey{u: m.U2, a: a2}]
					if len(v1) == 0 && len(v2) == 0 {
						continue
					}
					out = append(out, contrib{a1: a1, a2: a2, sim: corpus.SimL(v1, v2, opts.LiteralThreshold, &sc)})
				}
			}
		}
		parts[ci] = out
	})

	// Serial accumulation in chunk (= original match) order keeps the
	// float sums byte-identical to the naive single loop.
	for _, part := range parts {
		for _, c := range part {
			sum[c.a1][c.a2] += c.sim
			cnt[c.a1][c.a2]++
		}
	}
	for i := range sum {
		for j := range sum[i] {
			if cnt[i][j] > 0 {
				sum[i][j] /= float64(cnt[i][j])
			}
		}
	}
	return sum
}

// contrib is one match's simL contribution to a simA matrix cell.
type contrib struct {
	a1, a2 kb.AttrID
	sim    float64
}

// valKey addresses one entity's value set on one attribute.
type valKey struct {
	u kb.EntityID
	a kb.AttrID
}

// chunkRange is a half-open [lo, hi) range of match indexes.
type chunkRange struct{ lo, hi int }

// chunkRanges splits n matches into contiguous chunks: one per CPU when a
// runner is present, a single chunk otherwise.
func chunkRanges(n int, r Runner) []chunkRange {
	if n == 0 {
		return nil
	}
	nc := 1
	if r != nil {
		nc = runtime.NumCPU()
		if nc > n {
			nc = n
		}
	}
	out := make([]chunkRange, nc)
	for i := 0; i < nc; i++ {
		out[i] = chunkRange{lo: i * n / nc, hi: (i + 1) * n / nc}
	}
	return out
}

// runAll executes fn(0..n-1) through r, or serially when r is nil.
func runAll(r Runner, n int, fn func(int)) {
	if r == nil {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	r.ForEach(n, fn)
}

// SimilaritiesNaive is the retained per-pair string implementation of
// Eq. 1, the semantic anchor for the batched Similarities: the property
// tests require both to return byte-identical matrices on randomized KBs.
func SimilaritiesNaive(k1, k2 *kb.KB, min []pair.Pair, opts Options) [][]float64 {
	n1, n2 := k1.NumAttrs(), k2.NumAttrs()
	sum := make([][]float64, n1)
	cnt := make([][]int, n1)
	for i := range sum {
		sum[i] = make([]float64, n2)
		cnt[i] = make([]int, n2)
	}
	for _, m := range min {
		attrs1 := k1.Attrs(m.U1)
		attrs2 := k2.Attrs(m.U2)
		for _, a1 := range attrs1 {
			v1 := k1.AttrValues(m.U1, a1)
			for _, a2 := range attrs2 {
				v2 := k2.AttrValues(m.U2, a2)
				if len(v1) == 0 && len(v2) == 0 {
					continue
				}
				sum[a1][a2] += strsim.SimL(v1, v2, opts.LiteralThreshold)
				cnt[a1][a2]++
			}
		}
	}
	for i := range sum {
		for j := range sum[i] {
			if cnt[i][j] > 0 {
				sum[i][j] /= float64(cnt[i][j])
			}
		}
	}
	return sum
}

// FindMatches runs attribute matching end to end and returns the matches
// sorted by (A1, A2).
func FindMatches(k1, k2 *kb.KB, min []pair.Pair, opts Options) []Match {
	if opts.LiteralThreshold == 0 {
		opts.LiteralThreshold = 0.9
	}
	sims := Similarities(k1, k2, min, opts)
	var out []Match
	if opts.OneToOne {
		// Zero out entries under MinSimilarity so Hungarian leaves them
		// unassigned.
		W := make([][]float64, len(sims))
		for i := range sims {
			W[i] = make([]float64, len(sims[i]))
			for j, s := range sims[i] {
				if s >= opts.MinSimilarity {
					W[i][j] = s
				}
			}
		}
		rowMatch := assign.Hungarian(W)
		for a1, a2 := range rowMatch {
			if a2 >= 0 {
				out = append(out, Match{A1: kb.AttrID(a1), A2: kb.AttrID(a2), Sim: sims[a1][a2]})
			}
		}
	} else {
		for a1 := range sims {
			for a2, s := range sims[a1] {
				if s >= opts.MinSimilarity {
					out = append(out, Match{A1: kb.AttrID(a1), A2: kb.AttrID(a2), Sim: s})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A1 != out[j].A1 {
			return out[i].A1 < out[j].A1
		}
		return out[i].A2 < out[j].A2
	})
	return out
}
