package attrmatch

import (
	"fmt"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

// buildKBs creates two KBs where attribute correspondence is
// name↔title, year↔pubYear, and "venue" has no counterpart.
func buildKBs(n int) (*kb.KB, *kb.KB, []pair.Pair) {
	k1 := kb.New("k1")
	k2 := kb.New("k2")
	name := k1.AddAttr("name")
	year := k1.AddAttr("year")
	venue := k1.AddAttr("venue")
	title := k2.AddAttr("title")
	pubYear := k2.AddAttr("pubYear")

	var min []pair.Pair
	for i := 0; i < n; i++ {
		u1 := k1.AddEntity(fmt.Sprintf("e1_%d", i))
		u2 := k2.AddEntity(fmt.Sprintf("e2_%d", i))
		label := fmt.Sprintf("entity number %d", i)
		k1.SetLabel(u1, label)
		k2.SetLabel(u2, label)
		k1.AddAttrTriple(u1, name, label)
		k2.AddAttrTriple(u2, title, label)
		yr := fmt.Sprintf("%d", 1980+i)
		k1.AddAttrTriple(u1, year, yr)
		k2.AddAttrTriple(u2, pubYear, yr)
		k1.AddAttrTriple(u1, venue, fmt.Sprintf("venue %d", i%3))
		min = append(min, pair.Pair{U1: u1, U2: u2})
	}
	return k1, k2, min
}

func TestSimilaritiesShape(t *testing.T) {
	k1, k2, min := buildKBs(10)
	sims := Similarities(k1, k2, min, DefaultOptions())
	if len(sims) != k1.NumAttrs() || len(sims[0]) != k2.NumAttrs() {
		t.Fatalf("matrix shape %dx%d, want %dx%d", len(sims), len(sims[0]), k1.NumAttrs(), k2.NumAttrs())
	}
	name, title := k1.Attr("name"), k2.Attr("title")
	if sims[name][title] != 1 {
		t.Errorf("name↔title similarity = %v, want 1", sims[name][title])
	}
	year, pubYear := k1.Attr("year"), k2.Attr("pubYear")
	if sims[year][pubYear] != 1 {
		t.Errorf("year↔pubYear similarity = %v, want 1", sims[year][pubYear])
	}
	// name values ("entity number i") vs years should be low.
	if sims[name][pubYear] > 0.2 {
		t.Errorf("cross similarity too high: %v", sims[name][pubYear])
	}
}

func TestFindMatchesOneToOne(t *testing.T) {
	k1, k2, min := buildKBs(10)
	matches := FindMatches(k1, k2, min, DefaultOptions())
	if len(matches) != 2 {
		t.Fatalf("matches = %v, want exactly name↔title and year↔pubYear", matches)
	}
	seen := map[string]string{}
	for _, m := range matches {
		seen[k1.AttrName(m.A1)] = k2.AttrName(m.A2)
	}
	if seen["name"] != "title" || seen["year"] != "pubYear" {
		t.Errorf("wrong correspondence: %v", seen)
	}
	// venue must stay unmatched under 1:1 (nothing to pair with).
	if _, ok := seen["venue"]; ok {
		t.Error("venue should be unmatched")
	}
}

func TestWithoutOneToOneProducesMore(t *testing.T) {
	// Build a KB where one K1 attribute is similar to two K2 attributes:
	// without the 1:1 constraint both survive (lower precision, Table IV).
	k1 := kb.New("k1")
	k2 := kb.New("k2")
	label1 := k1.AddAttr("label")
	labelA := k2.AddAttr("labelA")
	labelB := k2.AddAttr("labelB")
	var min []pair.Pair
	for i := 0; i < 6; i++ {
		u1 := k1.AddEntity(fmt.Sprintf("a%d", i))
		u2 := k2.AddEntity(fmt.Sprintf("b%d", i))
		v := fmt.Sprintf("shared value %d", i)
		k1.AddAttrTriple(u1, label1, v)
		k2.AddAttrTriple(u2, labelA, v)
		k2.AddAttrTriple(u2, labelB, v)
		min = append(min, pair.Pair{U1: u1, U2: u2})
	}
	opts := DefaultOptions()
	with := FindMatches(k1, k2, min, opts)
	opts.OneToOne = false
	without := FindMatches(k1, k2, min, opts)
	if len(with) != 1 {
		t.Errorf("1:1 matches = %v, want 1", with)
	}
	if len(without) != 2 {
		t.Errorf("unconstrained matches = %v, want 2", without)
	}
}

func TestEmptyInitialMatches(t *testing.T) {
	k1, k2, _ := buildKBs(3)
	matches := FindMatches(k1, k2, nil, DefaultOptions())
	if len(matches) != 0 {
		t.Errorf("no evidence should yield no matches, got %v", matches)
	}
}

func TestRareAttributeNotMatched(t *testing.T) {
	// An attribute that never co-occurs in Min gets similarity 0 — the
	// failure mode the paper reports on D-Y.
	k1, k2, min := buildKBs(5)
	rare := k1.AddAttr("icd10")
	u := k1.Entity("e1_0")
	k1.AddAttrTriple(u, rare, "G44.847")
	matches := FindMatches(k1, k2, min, DefaultOptions())
	for _, m := range matches {
		if m.A1 == rare {
			t.Errorf("rare attribute should not match: %+v", m)
		}
	}
}
