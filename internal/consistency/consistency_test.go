package consistency

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitFunctionalProperty(t *testing.T) {
	// A functional property (birth place): every match has exactly one
	// value on each side and they always correspond ⇒ ε near 1 (clamped to
	// MaxEps).
	var obs []Observation
	for i := 0; i < 50; i++ {
		obs = append(obs, Observation{N1: 1, N2: 1, KnownL: 1})
	}
	e := Fit(obs, DefaultOptions())
	if e.Eps1 < 0.9 || e.Eps2 < 0.9 {
		t.Errorf("functional property: ε = (%v, %v), want near max", e.Eps1, e.Eps2)
	}
}

func TestFitRecoverySynthetic(t *testing.T) {
	// Generate observations from the generative model with known ε and
	// check the estimator recovers it within tolerance.
	rng := rand.New(rand.NewSource(3))
	for _, trueEps := range []float64{0.3, 0.6, 0.9} {
		var obs []Observation
		for i := 0; i < 400; i++ {
			n := 1 + rng.Intn(6)
			l := 0
			for j := 0; j < n; j++ {
				if rng.Float64() < trueEps {
					l++
				}
			}
			// Symmetric sets: both sides size n, l matched.
			obs = append(obs, Observation{N1: n, N2: n, KnownL: l})
		}
		e := FromCounts(obs, DefaultOptions())
		if math.Abs(e.Eps1-trueEps) > 0.07 {
			t.Errorf("FromCounts: ε=%v, want ≈%v", e.Eps1, trueEps)
		}
		// The latent-variable Fit with KnownL as lower bound should land at
		// or above the direct estimate (it may explain more pairs as
		// matched, never fewer).
		f := Fit(obs, DefaultOptions())
		if f.Eps1 < e.Eps1-0.05 {
			t.Errorf("Fit ε=%v below FromCounts ε=%v for true=%v", f.Eps1, e.Eps1, trueEps)
		}
	}
}

func TestFitNoObservations(t *testing.T) {
	e := Fit(nil, DefaultOptions())
	if e.Eps1 != 0.5 || e.Eps2 != 0.5 {
		t.Errorf("no data should give ε=0.5, got (%v,%v)", e.Eps1, e.Eps2)
	}
	e = Fit([]Observation{{N1: 0, N2: 0}}, DefaultOptions())
	if e.Eps1 != 0.5 || e.Eps2 != 0.5 {
		t.Errorf("empty sets should give ε=0.5, got (%v,%v)", e.Eps1, e.Eps2)
	}
}

func TestFitAsymmetricSides(t *testing.T) {
	// Side 1 has 4 values per entity, side 2 has 1, all side-2 values
	// matched: ε2 should be much higher than ε1.
	var obs []Observation
	for i := 0; i < 60; i++ {
		obs = append(obs, Observation{N1: 4, N2: 1, KnownL: 1})
	}
	e := FromCounts(obs, DefaultOptions())
	if e.Eps2 <= e.Eps1 {
		t.Errorf("ε2 (%v) should exceed ε1 (%v)", e.Eps2, e.Eps1)
	}
	if e.Eps1 > 0.35 {
		t.Errorf("ε1 = %v, want ≈ 0.25", e.Eps1)
	}
}

func TestEstimatesClamped(t *testing.T) {
	opts := DefaultOptions()
	var obs []Observation
	for i := 0; i < 100; i++ {
		obs = append(obs, Observation{N1: 3, N2: 3, KnownL: 0})
	}
	e := Fit(obs, opts)
	if e.Eps1 < opts.MinEps || e.Eps1 > opts.MaxEps || e.Eps2 < opts.MinEps || e.Eps2 > opts.MaxEps {
		t.Errorf("estimates out of clamp range: %+v", e)
	}
}

func TestBestLRespectsKnownL(t *testing.T) {
	o := Observation{N1: 5, N2: 5, KnownL: 3}
	// Strongly negative odds push L down, but the floor holds.
	if got := bestL(o, -10); got < 3 {
		t.Errorf("bestL = %d, want ≥ 3", got)
	}
	// Strongly positive odds push to the max.
	if got := bestL(o, 10); got != 5 {
		t.Errorf("bestL = %d, want 5", got)
	}
}

func TestLogChoose(t *testing.T) {
	if v := logChoose(5, 2); math.Abs(v-math.Log(10)) > 1e-9 {
		t.Errorf("logChoose(5,2) = %v, want log 10", v)
	}
	if v := logChoose(3, 5); !math.IsInf(v, -1) {
		t.Errorf("logChoose(3,5) = %v, want -Inf", v)
	}
	if v := logChoose(4, 0); v != 0 {
		t.Errorf("logChoose(4,0) = %v, want 0", v)
	}
}

func TestLikelihoodImprovesOverIterations(t *testing.T) {
	// Fit's result must have likelihood at least as good as a single
	// iteration from the same starts.
	rng := rand.New(rand.NewSource(9))
	var obs []Observation
	for i := 0; i < 100; i++ {
		n1, n2 := 1+rng.Intn(4), 1+rng.Intn(4)
		l := rng.Intn(min(n1, n2) + 1)
		obs = append(obs, Observation{N1: n1, N2: n2, KnownL: l})
	}
	e := Fit(obs, DefaultOptions())
	direct := FromCounts(obs, DefaultOptions())
	if e.LogLikelihood < direct.LogLikelihood-1e-6 {
		t.Errorf("Fit LL %v worse than FromCounts LL %v", e.LogLikelihood, direct.LogLikelihood)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
