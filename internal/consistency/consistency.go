// Package consistency estimates the consistency parameters (ε1, ε2) of a
// relationship pair (r1, r2) as defined in §V-A (Eq. 3–5): given an entity
// match (u1,u2), ε1 is the probability that a value u1′ ∈ N_r1(u1) has a
// matching counterpart in N_r2(u2), and symmetrically for ε2. The paper
// maximizes the likelihood (4) over ε1, ε2 and one latent integer L per
// initial match by analyzing an O(L_M^4)-piecewise continuous function; we
// reach the same stationary points with alternating exact coordinate
// optimization (closed-form ε given L, exhaustive integer scan for L given
// ε), restarted from several initial values — see DESIGN.md §4.
package consistency

import "math"

// Observation is one initial entity match's view of a relationship pair:
// the sizes of the two value sets and, optionally, a known lower bound on
// the number of matched values between them (from already-confirmed
// matches; -1 when unknown).
type Observation struct {
	N1, N2 int
	KnownL int // lower bound for the latent L; use -1 or 0 when unknown
}

// Estimate holds fitted consistency parameters.
type Estimate struct {
	Eps1, Eps2    float64
	LogLikelihood float64
	Latent        []int // fitted L per observation
}

// Options tunes the estimator.
type Options struct {
	// MinEps / MaxEps clamp the estimates away from 0 and 1 so that
	// downstream log-probabilities stay finite. Defaults 0.05 / 0.95.
	MinEps, MaxEps float64
	// PseudoCount adds smoothing observations toward ε=0.5, stabilizing
	// labels with very little evidence. Default 1.
	PseudoCount float64
	// MaxIters bounds the alternating optimization. Default 50.
	MaxIters int
}

// DefaultOptions returns the defaults described above.
func DefaultOptions() Options {
	return Options{MinEps: 0.05, MaxEps: 0.95, PseudoCount: 1, MaxIters: 50}
}

func (o *Options) fill() {
	if o.MinEps == 0 {
		o.MinEps = 0.05
	}
	if o.MaxEps == 0 {
		o.MaxEps = 0.95
	}
	if o.PseudoCount == 0 {
		o.PseudoCount = 1
	}
	if o.MaxIters == 0 {
		o.MaxIters = 50
	}
}

// Fit estimates (ε1, ε2) from the observations by maximizing Eq. (5). It
// runs the alternating optimization from several starting points and keeps
// the best likelihood. With no informative observations it returns
// ε1 = ε2 = 0.5.
func Fit(obs []Observation, opts Options) Estimate {
	opts.fill()
	sum1, sum2 := 0, 0
	for _, o := range obs {
		sum1 += o.N1
		sum2 += o.N2
	}
	if sum1 == 0 && sum2 == 0 {
		return Estimate{Eps1: 0.5, Eps2: 0.5, Latent: make([]int, len(obs))}
	}

	best := Estimate{LogLikelihood: math.Inf(-1)}
	for _, start := range []float64{0.25, 0.5, 0.75, 0.9} {
		e := fitFrom(obs, start, start, opts)
		if e.LogLikelihood > best.LogLikelihood {
			best = e
		}
	}
	return best
}

// fitFrom runs one alternating optimization from (e1, e2).
func fitFrom(obs []Observation, e1, e2 float64, opts Options) Estimate {
	latent := make([]int, len(obs))
	var ll float64
	for iter := 0; iter < opts.MaxIters; iter++ {
		// E-like step: best integer L per observation given (e1, e2).
		logOdds := math.Log(e1/(1-e1)) + math.Log(e2/(1-e2))
		for i, o := range obs {
			latent[i] = bestL(o, logOdds)
		}
		// M-like step: closed-form binomial rates with smoothing.
		sumL, sumN1, sumN2 := opts.PseudoCount*0.5, opts.PseudoCount, opts.PseudoCount
		sumL2 := opts.PseudoCount * 0.5
		for i, o := range obs {
			sumL += float64(latent[i])
			sumL2 += float64(latent[i])
			sumN1 += float64(o.N1)
			sumN2 += float64(o.N2)
		}
		ne1 := clamp(sumL/sumN1, opts.MinEps, opts.MaxEps)
		ne2 := clamp(sumL2/sumN2, opts.MinEps, opts.MaxEps)
		newLL := logLikelihood(obs, latent, ne1, ne2)
		if iter > 0 && newLL <= ll+1e-12 {
			e1, e2, ll = ne1, ne2, newLL
			break
		}
		e1, e2, ll = ne1, ne2, newLL
	}
	return Estimate{Eps1: e1, Eps2: e2, LogLikelihood: ll, Latent: latent}
}

// bestL scans the admissible integer range for the latent variable of one
// observation and returns the maximizer of
// log C(n1,L) + log C(n2,L) + L·logOdds.
func bestL(o Observation, logOdds float64) int {
	lm := o.N1
	if o.N2 < lm {
		lm = o.N2
	}
	lo := 0
	if o.KnownL > 0 {
		lo = o.KnownL
		if lo > lm {
			lo = lm
		}
	}
	bestL, bestV := lo, math.Inf(-1)
	for l := lo; l <= lm; l++ {
		v := logChoose(o.N1, l) + logChoose(o.N2, l) + float64(l)*logOdds
		if v > bestV {
			bestV, bestL = v, l
		}
	}
	return bestL
}

// logLikelihood evaluates the total log of Eq. (4) across observations.
func logLikelihood(obs []Observation, latent []int, e1, e2 float64) float64 {
	ll := 0.0
	for i, o := range obs {
		l := latent[i]
		ll += logChoose(o.N1, l) + logChoose(o.N2, l)
		ll += float64(l)*math.Log(e1) + float64(o.N1-l)*math.Log(1-e1)
		ll += float64(l)*math.Log(e2) + float64(o.N2-l)*math.Log(1-e2)
	}
	return ll
}

// logChoose returns log C(n,k), or -Inf when out of range.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return logFact(n) - logFact(k) - logFact(n-k)
}

var logFactCache []float64

func logFact(n int) float64 {
	if n < len(logFactCache) {
		return logFactCache[n]
	}
	start := len(logFactCache)
	if start == 0 {
		logFactCache = append(logFactCache, 0)
		start = 1
	}
	for i := start; i <= n; i++ {
		logFactCache = append(logFactCache, logFactCache[i-1]+math.Log(float64(i)))
	}
	return logFactCache[n]
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FromCounts is the direct estimator used when the matched-value counts are
// fully observed (e.g. from ground-truth seeds in the Table VI setting):
// ε_i = ΣL / Σn_i, clamped.
func FromCounts(obs []Observation, opts Options) Estimate {
	opts.fill()
	sumL := opts.PseudoCount * 0.5
	sumN1 := opts.PseudoCount
	sumN2 := opts.PseudoCount
	latent := make([]int, len(obs))
	for i, o := range obs {
		l := o.KnownL
		if l < 0 {
			l = 0
		}
		latent[i] = l
		sumL += float64(l)
		sumN1 += float64(o.N1)
		sumN2 += float64(o.N2)
	}
	e1 := clamp(sumL/sumN1, opts.MinEps, opts.MaxEps)
	e2 := clamp(sumL/sumN2, opts.MinEps, opts.MaxEps)
	return Estimate{Eps1: e1, Eps2: e2, LogLikelihood: logLikelihood(obs, latent, e1, e2), Latent: latent}
}
