package crowd

import (
	"math"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

func goodWorker(id int) Worker { return Worker{ID: id, Quality: 0.95} }

func TestInferUnanimousMatch(t *testing.T) {
	labels := []Label{
		{Worker: goodWorker(0), IsMatch: true},
		{Worker: goodWorker(1), IsMatch: true},
		{Worker: goodWorker(2), IsMatch: true},
	}
	inf := Infer(0.5, labels, DefaultThresholds())
	if inf.Verdict != IsMatch {
		t.Errorf("verdict = %v, want IsMatch (posterior %v)", inf.Verdict, inf.Posterior)
	}
	if inf.Posterior < 0.99 {
		t.Errorf("posterior = %v, want near 1", inf.Posterior)
	}
}

func TestInferUnanimousNonMatch(t *testing.T) {
	labels := []Label{
		{Worker: goodWorker(0), IsMatch: false},
		{Worker: goodWorker(1), IsMatch: false},
	}
	inf := Infer(0.5, labels, DefaultThresholds())
	if inf.Verdict != IsNonMatch {
		t.Errorf("verdict = %v, want IsNonMatch (posterior %v)", inf.Verdict, inf.Posterior)
	}
}

func TestInferConflictingLabelsUnresolved(t *testing.T) {
	labels := []Label{
		{Worker: goodWorker(0), IsMatch: true},
		{Worker: goodWorker(1), IsMatch: false},
	}
	inf := Infer(0.5, labels, DefaultThresholds())
	if inf.Verdict != Unresolved {
		t.Errorf("verdict = %v, want Unresolved (posterior %v)", inf.Verdict, inf.Posterior)
	}
	if math.Abs(inf.Posterior-0.5) > 1e-9 {
		t.Errorf("symmetric conflict should stay at prior: %v", inf.Posterior)
	}
}

func TestInferEquation17Exact(t *testing.T) {
	// One worker with λ=0.9 saying match, prior 0.5:
	// post = 0.5 / (0.5 + 0.5·(0.1/0.9)) = 0.9.
	labels := []Label{{Worker: Worker{Quality: 0.9}, IsMatch: true}}
	inf := Infer(0.5, labels, DefaultThresholds())
	if math.Abs(inf.Posterior-0.9) > 1e-9 {
		t.Errorf("posterior = %v, want 0.9", inf.Posterior)
	}
}

func TestInferPriorMatters(t *testing.T) {
	labels := []Label{{Worker: Worker{Quality: 0.8}, IsMatch: true}}
	low := Infer(0.1, labels, DefaultThresholds())
	high := Infer(0.9, labels, DefaultThresholds())
	if low.Posterior >= high.Posterior {
		t.Errorf("prior ignored: %v vs %v", low.Posterior, high.Posterior)
	}
}

func TestInferChanceWorkerCarriesNoSignal(t *testing.T) {
	labels := []Label{{Worker: Worker{Quality: 0.5}, IsMatch: true}}
	inf := Infer(0.5, labels, DefaultThresholds())
	if math.Abs(inf.Posterior-0.5) > 0.05 {
		t.Errorf("50%% worker moved posterior to %v", inf.Posterior)
	}
}

// TestInferPosteriorEdgeCases is the table-driven sweep over the Eq.
// (17) corners: λ→1 workers in conflict, all-abstain answers, the
// clamped priors, worse-than-chance workers, and the exact accept /
// reject threshold boundaries that decide whether a question lands in
// the hard-question band (whose priors core damps) or resolves.
func TestInferPosteriorEdgeCases(t *testing.T) {
	th := DefaultThresholds()
	lbl := func(lam float64, match bool) Label {
		return Label{Worker: Worker{Quality: lam}, IsMatch: match}
	}
	cases := []struct {
		name   string
		prior  float64
		labels []Label
		// wantPost < 0 skips the posterior check (verdict only).
		wantPost float64
		verdict  Verdict
	}{
		// Two λ→1 workers in conflict: both clamp to 0.999, their odds
		// ratios cancel exactly and the posterior stays at the prior —
		// a hard question, not a coin flip decided by float noise.
		{"lambda-to-one-conflict", 0.5, []Label{lbl(1, true), lbl(1, false)}, 0.5, Unresolved},
		{"lambda-above-one-conflict", 0.5, []Label{lbl(1.7, true), lbl(1, false)}, 0.5, Unresolved},
		// Perfect workers alone are decisive even against a skeptical prior.
		{"lambda-to-one-unanimous", 0.3, []Label{lbl(1, true), lbl(1, true)}, -1, IsMatch},
		// All workers abstained (no labels): the posterior is exactly the
		// prior, so the verdict is whatever band the prior already sits in.
		{"all-abstain-neutral-prior", 0.5, nil, 0.5, Unresolved},
		{"all-abstain-confident-prior", 0.9, nil, 0.9, IsMatch},
		{"all-abstain-dismissive-prior", 0.1, nil, 0.1, IsNonMatch},
		// Prior clamping: degenerate priors are pulled into (0,1) before
		// the odds form, so empty evidence still yields a sane posterior.
		{"prior-zero-clamped", 0, nil, 0.01, IsNonMatch},
		{"prior-one-clamped", 1, nil, 0.99, IsMatch},
		// A worker at or below chance is clamped to 0.51: almost no
		// signal, the posterior barely moves off the prior.
		{"chance-worker-clamped", 0.5, []Label{lbl(0.5, true)}, -1, Unresolved},
		{"worse-than-chance-clamped", 0.5, []Label{lbl(0.2, false)}, -1, Unresolved},
		// Accept boundary: one λ=0.8 match label at prior 0.5 gives
		// post = 0.5/(0.5+0.5·0.25) = 0.8 exactly — on the boundary the
		// question resolves (≥), it is not damped as hard.
		{"accept-boundary-exact", 0.5, []Label{lbl(0.8, true)}, 0.8, IsMatch},
		// Just inside the band: λ=0.79 keeps the posterior below 0.8, so
		// the question stays hard.
		{"accept-boundary-inside", 0.5, []Label{lbl(0.79, true)}, -1, Unresolved},
		// Reject boundary, mirrored: one λ=0.8 non-match label gives
		// post = 0.2 exactly — resolved non-match (≤).
		{"reject-boundary-exact", 0.5, []Label{lbl(0.8, false)}, 0.2, IsNonMatch},
		{"reject-boundary-inside", 0.5, []Label{lbl(0.79, false)}, -1, Unresolved},
		// Majorities with equal λ reduce to the surplus label.
		{"majority-two-vs-one", 0.5, []Label{lbl(0.8, true), lbl(0.8, true), lbl(0.8, false)}, 0.8, IsMatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inf := Infer(tc.prior, tc.labels, th)
			if inf.Verdict != tc.verdict {
				t.Errorf("verdict = %v, want %v (posterior %v)", inf.Verdict, tc.verdict, inf.Posterior)
			}
			if tc.wantPost >= 0 && math.Abs(inf.Posterior-tc.wantPost) > 1e-9 {
				t.Errorf("posterior = %v, want %v", inf.Posterior, tc.wantPost)
			}
			if inf.Posterior < 0 || inf.Posterior > 1 || math.IsNaN(inf.Posterior) {
				t.Errorf("posterior %v outside [0,1]", inf.Posterior)
			}
		})
	}
}

func TestPlatformAccurateWorkers(t *testing.T) {
	gold := pair.NewGold([]pair.Pair{{U1: 1, U2: 1}, {U1: 2, U2: 2}})
	pl := NewPlatform(gold.IsMatch, Config{
		NumWorkers: 20, WorkersPerQuestion: 5, ErrorRate: 0.02, Seed: 7,
	})
	right := 0
	total := 0
	for _, q := range []pair.Pair{{U1: 1, U2: 1}, {U1: 2, U2: 2}, {U1: 1, U2: 2}, {U1: 2, U2: 1}} {
		labels := pl.Ask(q)
		if len(labels) != 5 {
			t.Fatalf("got %d labels, want 5", len(labels))
		}
		inf := Infer(0.5, labels, DefaultThresholds())
		want := IsNonMatch
		if gold.IsMatch(q) {
			want = IsMatch
		}
		total++
		if inf.Verdict == want {
			right++
		}
	}
	if right != total {
		t.Errorf("accurate workers resolved %d/%d", right, total)
	}
	if pl.NumQuestions() != 4 {
		t.Errorf("NumQuestions = %d, want 4", pl.NumQuestions())
	}
}

func TestPlatformCachesRepeatedQuestions(t *testing.T) {
	gold := pair.NewGold([]pair.Pair{{U1: 1, U2: 1}})
	pl := NewPlatform(gold.IsMatch, DefaultConfig())
	q := pair.Pair{U1: 1, U2: 1}
	l1 := pl.Ask(q)
	l2 := pl.Ask(q)
	if pl.NumQuestions() != 1 {
		t.Errorf("repeat question counted: %d", pl.NumQuestions())
	}
	if len(l1) != len(l2) {
		t.Fatal("cache returned different labels")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Error("cache returned different labels")
		}
	}
}

func TestPlatformErrorRateRealized(t *testing.T) {
	// With error rate 0.25 a single worker should be wrong ≈ 25% of the
	// time over many fresh questions.
	gold := pair.NewGold(nil) // everything is a non-match
	pl := NewPlatform(gold.IsMatch, Config{
		NumWorkers: 10, WorkersPerQuestion: 1, ErrorRate: 0.25, Seed: 3,
	})
	wrong := 0
	const n = 2000
	for i := 0; i < n; i++ {
		labels := pl.Ask(pair.Pair{U1: 0, U2: int32ID(i)})
		if labels[0].IsMatch { // truth is non-match
			wrong++
		}
	}
	rate := float64(wrong) / n
	if math.Abs(rate-0.25) > 0.03 {
		t.Errorf("observed error rate %v, want ≈ 0.25", rate)
	}
}

func TestPlatformDeterministicWithSeed(t *testing.T) {
	gold := pair.NewGold([]pair.Pair{{U1: 1, U2: 1}})
	mk := func() []Label {
		pl := NewPlatform(gold.IsMatch, Config{NumWorkers: 10, WorkersPerQuestion: 3, ErrorRate: 0.2, Seed: 42})
		return pl.Ask(pair.Pair{U1: 1, U2: 1})
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func int32ID(i int) kb.EntityID { return kb.EntityID(i) }
