// Package crowd is the crowdsourcing substrate: a simulated worker pool
// in place of Amazon MTurk (see DESIGN.md §4) plus the error-tolerant truth
// inference of §VII-A. Each question is assigned to several workers; a
// worker answers correctly with probability λ_w (the worker probability
// model); posterior match probabilities follow Eq. (17) and are thresholded
// into matches, non-matches and "hard" questions whose priors get damped.
package crowd

import (
	"math/rand"

	"repro/internal/pair"
)

// Worker is a crowd worker with quality λ ∈ (0,1]: the probability of
// labeling a question correctly. The paper reuses a platform qualification
// test as λ; the simulator draws answers accordingly.
type Worker struct {
	ID      int
	Quality float64
}

// Label is one worker's answer to one question.
type Label struct {
	Worker  Worker
	IsMatch bool
}

// Oracle answers whether a pair is truly a match; in experiments this is
// the gold standard.
type Oracle func(pair.Pair) bool

// Platform simulates a crowdsourcing platform: a worker pool answering
// pairwise questions with per-worker error, plus bookkeeping of the number
// of questions issued (the #Q metric reported in every experiment).
type Platform struct {
	workers      []Worker
	rng          *rand.Rand
	oracle       Oracle
	perQuestion  int
	numQuestions int
	labelCache   map[pair.Pair][]Label
}

// Config configures a Platform.
type Config struct {
	// NumWorkers is the worker pool size. Default 50.
	NumWorkers int
	// WorkersPerQuestion is the redundancy (the paper uses 5).
	WorkersPerQuestion int
	// ErrorRate, when > 0, gives every worker quality 1−ErrorRate (the
	// simulated-worker experiments of Figure 3).
	ErrorRate float64
	// QualityLow/QualityHigh, used when ErrorRate == 0, draw each worker's
	// quality uniformly from [QualityLow, QualityHigh] (the "real worker"
	// experiment models MTurk's ≥95% approval filter: 0.93–0.99).
	QualityLow, QualityHigh float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig mirrors the paper's real-worker setup.
func DefaultConfig() Config {
	return Config{
		NumWorkers:         50,
		WorkersPerQuestion: 5,
		QualityLow:         0.93,
		QualityHigh:        0.99,
		Seed:               1,
	}
}

// NewPlatform builds a simulated platform answering from the oracle.
func NewPlatform(oracle Oracle, cfg Config) *Platform {
	if cfg.NumWorkers <= 0 {
		cfg.NumWorkers = 50
	}
	if cfg.WorkersPerQuestion <= 0 {
		cfg.WorkersPerQuestion = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	workers := make([]Worker, cfg.NumWorkers)
	for i := range workers {
		q := 0.0
		if cfg.ErrorRate > 0 {
			q = 1 - cfg.ErrorRate
		} else {
			lo, hi := cfg.QualityLow, cfg.QualityHigh
			if lo <= 0 || hi <= 0 || hi < lo {
				lo, hi = 0.93, 0.99
			}
			q = lo + (hi-lo)*rng.Float64()
		}
		if q <= 0 {
			q = 0.5
		}
		if q > 1 {
			q = 1
		}
		workers[i] = Worker{ID: i, Quality: q}
	}
	return &Platform{
		workers:     workers,
		rng:         rng,
		oracle:      oracle,
		perQuestion: cfg.WorkersPerQuestion,
		labelCache:  map[pair.Pair][]Label{},
	}
}

// Ask publishes question q to WorkersPerQuestion distinct workers and
// returns their labels. Repeated questions are answered from a cache
// without incrementing the question count, mirroring the paper's setup
// where a label is reused across approaches.
func (pl *Platform) Ask(q pair.Pair) []Label {
	if cached, ok := pl.labelCache[q]; ok {
		return cached
	}
	pl.numQuestions++
	truth := pl.oracle(q)
	chosen := pl.rng.Perm(len(pl.workers))[:min(pl.perQuestion, len(pl.workers))]
	labels := make([]Label, 0, len(chosen))
	for _, wi := range chosen {
		w := pl.workers[wi]
		ans := truth
		if pl.rng.Float64() >= w.Quality {
			ans = !truth
		}
		labels = append(labels, Label{Worker: w, IsMatch: ans})
	}
	pl.labelCache[q] = labels
	return labels
}

// NumQuestions returns the number of distinct questions asked so far.
func (pl *Platform) NumQuestions() int { return pl.numQuestions }

// Workers exposes the pool (read-only).
func (pl *Platform) Workers() []Worker { return pl.workers }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Verdict classifies a question after truth inference.
type Verdict int

// Truth-inference outcomes.
const (
	// Unresolved means the labels were inconsistent (hard question).
	Unresolved Verdict = iota
	// IsMatch means the posterior exceeded the accept threshold.
	IsMatch
	// IsNonMatch means the posterior fell below the reject threshold.
	IsNonMatch
)

// Inference aggregates labels into a posterior and a verdict.
type Inference struct {
	Posterior float64
	Verdict   Verdict
}

// Thresholds are the accept/reject posteriors of §VII-A (0.8 / 0.2).
type Thresholds struct {
	Accept float64
	Reject float64
}

// DefaultThresholds mirrors the paper.
func DefaultThresholds() Thresholds { return Thresholds{Accept: 0.8, Reject: 0.2} }

// Infer computes the posterior match probability of Eq. (17) from the
// labels and prior Pr[m_q], then thresholds it.
//
//	Pr[m_q | W_T, W_F] = Pr[m_q] / (Pr[m_q] + (1−Pr[m_q]) ∏_{w∈W_T} (1−λ)/λ ∏_{w∈W_F} λ/(1−λ))
func Infer(prior float64, labels []Label, th Thresholds) Inference {
	if prior <= 0 {
		prior = 0.01
	}
	if prior >= 1 {
		prior = 0.99
	}
	ratio := 1.0 // ∏ (1−λ)/λ over W_T × ∏ λ/(1−λ) over W_F
	for _, l := range labels {
		lam := l.Worker.Quality
		if lam <= 0.5 {
			lam = 0.51 // a worker no better than chance carries no signal
		}
		if lam >= 1 {
			lam = 0.999
		}
		if l.IsMatch {
			ratio *= (1 - lam) / lam
		} else {
			ratio *= lam / (1 - lam)
		}
	}
	post := prior / (prior + (1-prior)*ratio)
	v := Unresolved
	switch {
	case post >= th.Accept:
		v = IsMatch
	case post <= th.Reject:
		v = IsNonMatch
	}
	return Inference{Posterior: post, Verdict: v}
}
