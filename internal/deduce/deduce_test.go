package deduce

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/kb"
	"repro/internal/pair"
)

// refOracle is the brute-force reference: it recomputes the transitive
// closure from scratch on every query, with none of the Store's
// incremental structures, so agreement is meaningful.
type refOracle struct {
	mode       Mode
	matches    []pair.Pair
	nonmatches []pair.Pair
}

func (r *refOracle) record(p pair.Pair, v Verdict) {
	if v == Match {
		r.matches = append(r.matches, p)
	} else {
		r.nonmatches = append(r.nonmatches, p)
	}
}

// clusterOf floods match edges from n and returns the reachable set.
func (r *refOracle) clusterOf(n node) map[node]bool {
	seen := map[node]bool{n: true}
	for changed := true; changed; {
		changed = false
		for _, m := range r.matches {
			a, b := leftNode(int32(m.U1)), rightNode(int32(m.U2))
			if seen[a] != seen[b] {
				seen[a], seen[b] = true, true
				changed = true
			}
		}
	}
	return seen
}

func (r *refOracle) lookup(p pair.Pair) Verdict {
	a, b := leftNode(int32(p.U1)), rightNode(int32(p.U2))
	ca := r.clusterOf(a)
	if ca[b] {
		return Match
	}
	cb := r.clusterOf(b)
	for _, nm := range r.nonmatches {
		x, y := leftNode(int32(nm.U1)), rightNode(int32(nm.U2))
		if (ca[x] && cb[y]) || (ca[y] && cb[x]) {
			return NonMatch
		}
	}
	if r.mode == OneToOne {
		for n := range ca {
			if n&1 == 1 { // p.U1 already matched to some U2
				return NonMatch
			}
		}
		for n := range cb {
			if n&1 == 0 { // p.U2 already matched to some U1
				return NonMatch
			}
		}
	}
	return Unknown
}

type fact struct {
	p pair.Pair
	v Verdict
}

// genFacts builds a random consistent answer stream: a ground-truth
// clustering of nL+nR entities, then sampled pairs labeled from it.
// In OneToOne mode every cluster keeps at most one entity per side.
func genFacts(rng *rand.Rand, mode Mode, nL, nR, clusters, samples int) []fact {
	clusterL := make([]int, nL)
	for i := range clusterL {
		clusterL[i] = rng.Intn(clusters)
	}
	clusterR := make([]int, nR)
	for i := range clusterR {
		clusterR[i] = rng.Intn(clusters)
	}
	if mode == OneToOne {
		// A permutation matching: left i pairs with right i when both
		// land in the same cluster id; everything else is distinct.
		for i := range clusterL {
			clusterL[i] = i
		}
		for i := range clusterR {
			if i < nL && rng.Intn(2) == 0 {
				clusterR[i] = i // matched to left i
			} else {
				clusterR[i] = nL + i // unmatched
			}
		}
	}
	var facts []fact
	for len(facts) < samples {
		p := pair.Pair{U1: kb.EntityID(rng.Intn(nL)), U2: kb.EntityID(rng.Intn(nR))}
		if clusterL[p.U1] == clusterR[p.U2] {
			facts = append(facts, fact{p, Match})
		} else {
			facts = append(facts, fact{p, NonMatch})
		}
	}
	return facts
}

// checkChain asserts a provenance chain really proves the verdict:
// every link is a recorded fact, and the links connect p's endpoints
// (for NonMatch, via exactly one recorded non-match).
func checkChain(t *testing.T, s *Store, p pair.Pair, v Verdict, chain []pair.Pair) {
	t.Helper()
	if v == Unknown {
		if chain != nil {
			t.Fatalf("Lookup(%v)=Unknown but chain %v", p, chain)
		}
		return
	}
	nonmatches := 0
	for _, link := range chain {
		switch {
		case s.matches.Has(link):
		case s.nonmatches.Has(link):
			nonmatches++
		default:
			t.Fatalf("Lookup(%v) chain link %v was never recorded", p, link)
		}
	}
	// Walk the chain as a node path: each link must touch the frontier
	// node and advance it.
	walk := func(start node) (node, bool) {
		at := start
		for _, link := range chain {
			la, lb := leftNode(int32(link.U1)), rightNode(int32(link.U2))
			switch at {
			case la:
				at = lb
			case lb:
				at = la
			default:
				return at, false
			}
		}
		return at, true
	}
	switch v {
	case Match:
		end, ok := walk(leftNode(int32(p.U1)))
		if nonmatches != 0 || !ok || end != rightNode(int32(p.U2)) {
			t.Fatalf("Lookup(%v)=Match chain %v is not a match path U1→U2", p, chain)
		}
	case NonMatch:
		if nonmatches > 1 {
			t.Fatalf("Lookup(%v)=NonMatch chain %v has %d non-matches", p, chain, nonmatches)
		}
		if nonmatches == 1 {
			// Direct separation: a connected path U1→U2 crossing
			// exactly one recorded non-match.
			end, ok := walk(leftNode(int32(p.U1)))
			if !ok || end != rightNode(int32(p.U2)) {
				t.Fatalf("Lookup(%v)=NonMatch chain %v does not connect U1 to U2", p, chain)
			}
			return
		}
		// OneToOne matched-elsewhere: a non-empty match path rooted at
		// either endpoint, ending at the usurping partner.
		if s.mode != OneToOne || len(chain) == 0 {
			t.Fatalf("Lookup(%v)=NonMatch chain %v has no non-match link", p, chain)
		}
		if _, ok := walk(leftNode(int32(p.U1))); !ok {
			if _, ok := walk(rightNode(int32(p.U2))); !ok {
				t.Fatalf("Lookup(%v)=NonMatch chain %v is rooted at neither endpoint", p, chain)
			}
		}
	}
}

// TestPropertyAgainstBruteForce is the satellite-1 property suite: for
// randomized ground-truth clusterings and shuffled answer streams, the
// Store agrees with the brute-force closure oracle on every pair, its
// provenance chains prove their verdicts, and the final Snapshot is
// identical for every permutation of the same answers.
func TestPropertyAgainstBruteForce(t *testing.T) {
	for _, mode := range []Mode{General, OneToOne} {
		for trial := 0; trial < 25; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*int(mode) + trial)))
			nL, nR := 3+rng.Intn(10), 3+rng.Intn(10)
			facts := genFacts(rng, mode, nL, nR, 1+rng.Intn(5), 5+rng.Intn(40))

			ref := &refOracle{mode: mode}
			base := New(mode)
			for _, f := range facts {
				if err := base.Record(f.p, f.v); err != nil {
					t.Fatalf("mode=%v trial=%d: consistent fact %v/%v rejected: %v", mode, trial, f.p, f.v, err)
				}
				ref.record(f.p, f.v)
			}

			// Cross-check every pair in the domain against brute force.
			for u1 := 0; u1 < nL; u1++ {
				for u2 := 0; u2 < nR; u2++ {
					p := pair.Pair{U1: kb.EntityID(u1), U2: kb.EntityID(u2)}
					want := ref.lookup(p)
					got, chain := base.Lookup(p)
					if got != want {
						t.Fatalf("mode=%v trial=%d: Lookup(%v)=%v, brute force says %v", mode, trial, p, got, want)
					}
					checkChain(t, base, p, got, chain)
				}
			}

			// Any permutation of the same answers yields the same
			// Snapshot and the same verdicts.
			want := base.Snapshot()
			for perm := 0; perm < 4; perm++ {
				shuffled := append([]fact(nil), facts...)
				rng.Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				st := New(mode)
				for _, f := range shuffled {
					if err := st.Record(f.p, f.v); err != nil {
						t.Fatalf("mode=%v trial=%d perm=%d: %v/%v rejected: %v", mode, trial, perm, f.p, f.v, err)
					}
				}
				if got := st.Snapshot(); !got.Equal(want) {
					t.Fatalf("mode=%v trial=%d perm=%d: snapshot diverged\n got %+v\nwant %+v", mode, trial, perm, got, want)
				}
				for u1 := 0; u1 < nL; u1++ {
					for u2 := 0; u2 < nR; u2++ {
						p := pair.Pair{U1: kb.EntityID(u1), U2: kb.EntityID(u2)}
						gb, _ := base.Lookup(p)
						gs, _ := st.Lookup(p)
						if gb != gs {
							t.Fatalf("mode=%v trial=%d perm=%d: Lookup(%v) order-dependent: %v vs %v", mode, trial, perm, p, gb, gs)
						}
					}
				}
			}
		}
	}
}

// TestStatsMonotonicUnderConcurrentScrape exercises the documented
// concurrency contract under -race: Stats may be read while a single
// writer records, and every counter is monotonic.
func TestStatsMonotonicUnderConcurrentScrape(t *testing.T) {
	s := New(OneToOne)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.Hits < last.Hits || st.Unions < last.Unions || st.Conflicts < last.Conflicts {
				t.Error("Stats went backwards")
				return
			}
			last = st
		}
	}()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := pair.Pair{U1: kb.EntityID(rng.Intn(50)), U2: kb.EntityID(rng.Intn(50))}
		if rng.Intn(2) == 0 {
			_ = s.Record(p, Match)
		} else {
			_ = s.Record(p, NonMatch)
		}
	}
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.Unions == 0 || st.Conflicts == 0 {
		t.Fatalf("expected some unions and conflicts, got %+v", st)
	}
}

// TestConflictErrors pins the typed-error contract on the three
// contradiction shapes.
func TestConflictErrors(t *testing.T) {
	p := func(a, b int) pair.Pair { return pair.Pair{U1: kb.EntityID(a), U2: kb.EntityID(b)} }

	s := New(General)
	mustRecord(t, s, p(0, 0), Match)
	mustRecord(t, s, p(1, 0), Match) // 0L,1L,0R one cluster
	err := s.Record(p(1, 0), NonMatch)
	ce, ok := err.(*ConflictError)
	if !ok || ce.Verdict != NonMatch || len(ce.Witness) == 0 {
		t.Fatalf("non-match of an implied match: got %v", err)
	}

	mustRecord(t, s, p(2, 1), NonMatch) // cluster{0L,1L,0R} vs cluster... 2L vs 1R
	mustRecord(t, s, p(2, 0), NonMatch) // 2L vs the big cluster
	err = s.Record(p(2, 0), Match)
	if ce, ok = err.(*ConflictError); !ok || ce.Verdict != Match {
		t.Fatalf("match across a conflict edge: got %v", err)
	}

	o := New(OneToOne)
	mustRecord(t, o, p(0, 0), Match)
	err = o.Record(p(0, 1), Match)
	if ce, ok = err.(*ConflictError); !ok || len(ce.Witness) == 0 {
		t.Fatalf("second partner under 1:1: got %v", err)
	}
	if v, chain := o.Lookup(p(0, 1)); v != NonMatch || len(chain) == 0 {
		t.Fatalf("1:1 matched-elsewhere lookup: got %v %v", v, chain)
	}
}

func mustRecord(t *testing.T, s *Store, p pair.Pair, v Verdict) {
	t.Helper()
	if err := s.Record(p, v); err != nil {
		t.Fatalf("Record(%v, %v): %v", p, v, err)
	}
}

// FuzzDeduceRecord is the satellite-2 fuzzer: arbitrary interleavings
// of match/non-match verdicts over a small entity domain (so
// contradictions are common) never panic, every rejected Record leaves
// the store byte-identical (snapshot compare), and every accepted
// Record keeps the store in agreement with the brute-force oracle on
// the recorded pair itself.
func FuzzDeduceRecord(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 0, 0, 0, 0, 1, 0, 2, 0, 0, 3})
	f.Add([]byte{0, 9, 9, 1, 9, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		mode := General
		if data[0]&1 == 1 {
			mode = OneToOne
		}
		if len(data) > 1+3*100 {
			data = data[:1+3*100] // keep the cubic reference oracle affordable
		}
		s := New(mode)
		ref := &refOracle{mode: mode}
		for i := 1; i+2 < len(data); i += 3 {
			p := pair.Pair{U1: kb.EntityID(data[i] % 6), U2: kb.EntityID(data[i+1] % 6)}
			v := Match
			if data[i+2]&1 == 1 {
				v = NonMatch
			}
			before := s.Snapshot()
			err := s.Record(p, v)
			if err != nil {
				if _, ok := err.(*ConflictError); !ok {
					t.Fatalf("Record(%v,%v): non-conflict error %v", p, v, err)
				}
				if got := s.Snapshot(); !got.Equal(before) {
					t.Fatalf("rejected Record(%v,%v) mutated the store:\nbefore %+v\nafter  %+v", p, v, before, got)
				}
				continue
			}
			ref.record(p, v)
			got, chain := s.Lookup(p)
			if got != v {
				t.Fatalf("Lookup(%v) right after Record says %v, want %v", p, got, v)
			}
			checkChain(t, s, p, got, chain)
			if want := ref.lookup(p); got != want {
				t.Fatalf("Lookup(%v)=%v disagrees with brute force %v", p, got, want)
			}
		}
	})
}
