// Package deduce implements transitive-closure answer deduction over
// confirmed crowd answers, after "Leveraging Transitive Relations for
// Crowdsourced Joins" (Wang et al.): match(a,b) ∧ match(b,c) ⇒
// match(a,c), and match(a,b) ∧ non-match(b,c) ⇒ non-match(a,c). The
// Store keeps an incremental union-find over confirmed matches plus
// per-cluster-pair conflict edges for confirmed non-matches, so a
// Lookup answers in near-constant time whether a pair's verdict is
// already implied by previously recorded answers.
//
// Determinism: the Store's observable state — Snapshot, Lookup verdicts
// and provenance chains — is a pure function of the *set* of recorded
// (pair, verdict) facts, independent of the order they were recorded
// in. Cluster roots are canonical (the minimum node of each cluster),
// conflict witnesses are the lexicographically minimal recorded
// non-match pair between two clusters, and all iteration that reaches
// the output is sorted. This is what lets sharded and out-of-order
// sessions that deduce stay byte-identical to a synchronous oracle.
//
// A Store is not safe for concurrent use; callers synchronize. The
// monotonic Stats counters are atomics so metric scrapes may read them
// without holding the caller's lock.
package deduce

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/pair"
)

// Verdict is the deduction outcome for a pair.
type Verdict int

// Verdict values. Unknown means the recorded answers imply nothing
// about the pair.
const (
	Unknown Verdict = iota
	Match
	NonMatch
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Match:
		return "match"
	case NonMatch:
		return "non-match"
	default:
		return "unknown"
	}
}

// Mode selects how much the Store is allowed to infer.
type Mode int

const (
	// General deduces only what transitivity licenses: matches form
	// clusters, and a recorded non-match separates two whole clusters.
	General Mode = iota
	// OneToOne additionally enforces the paper's 1:1 constraint: each
	// entity matches at most one entity on the other side, so a second
	// match for an already-matched entity is a conflict, and
	// Lookup(a,b) deduces NonMatch when a or b is matched elsewhere.
	OneToOne
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == OneToOne {
		return "one-to-one"
	}
	return "general"
}

// ConflictError is returned by Record when the new fact contradicts
// what the store has already deduced. The store is left exactly as it
// was before the call.
type ConflictError struct {
	// Pair is the rejected pair and Verdict the rejected verdict.
	Pair    pair.Pair
	Verdict Verdict
	// Witness is the provenance chain of recorded answers that implies
	// the opposite verdict (or, under OneToOne, the chain matching one
	// endpoint elsewhere).
	Witness []pair.Pair
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("deduce: recording %v as %s contradicts %d prior answer(s) %v",
		e.Pair, e.Verdict, len(e.Witness), e.Witness)
}

// Stats are monotonic counters suitable for Prometheus-style
// counter families. They only ever increase.
type Stats struct {
	// Hits counts Lookup calls that returned Match or NonMatch.
	Hits uint64
	// Unions counts cluster-merge operations performed by Record.
	Unions uint64
	// Conflicts counts distinct cluster-pair conflict edges created by
	// recorded non-matches (cumulative; edges merged when clusters
	// merge are not un-counted).
	Conflicts uint64
}

// node encodes a KB-qualified entity: U1 entities on bit 0 = 0, U2
// entities on bit 0 = 1. The two KBs have independent dense ID spaces,
// so the side bit keeps them from colliding.
type node int64

func leftNode(id int32) node  { return node(id) << 1 }
func rightNode(id int32) node { return node(id)<<1 | 1 }

// edge is one recorded match adjacency, remembering the answered pair
// that created it for provenance reconstruction.
type edge struct {
	to  node
	via pair.Pair
}

// Store is the incremental deduction index. The zero value is not
// usable; construct with New.
type Store struct {
	mode Mode

	// parent is the union-find forest over nodes that appeared in at
	// least one recorded answer. A node absent from the map is its own
	// root. Roots are canonical: find returns the minimum node of the
	// cluster, so the partition's representation is order-independent.
	parent map[node]node

	// adj holds every recorded match pair as two directed edges; the
	// full edge set (not a spanning subset) keeps provenance search
	// order-independent.
	adj map[node][]edge

	// matches and nonmatches are the recorded fact sets; re-recording
	// a known fact is a no-op, which keeps Snapshot order-independent.
	matches    pair.Set
	nonmatches pair.Set

	// conflicts maps root → (other root → minimal witness non-match
	// pair between the two clusters). Symmetric: both directions are
	// stored. Witnesses are minimal over all recorded non-matches
	// between the clusters, so they are order-independent too.
	conflicts map[node]map[node]pair.Pair

	// sideMin maps a cluster root to the minimum member node on each
	// side ([0] = U1, [1] = U2), or -1 when the cluster has none.
	// Under OneToOne the invariant is at most one member per side, so
	// the minimum is the member; minima are order-independent.
	sideMin map[node][2]node

	hits      atomic.Uint64
	unions    atomic.Uint64
	conflictN atomic.Uint64
}

// New returns an empty Store operating in the given mode.
func New(mode Mode) *Store {
	return &Store{
		mode:       mode,
		parent:     make(map[node]node),
		adj:        make(map[node][]edge),
		matches:    pair.NewSet(),
		nonmatches: pair.NewSet(),
		conflicts:  make(map[node]map[node]pair.Pair),
		sideMin:    make(map[node][2]node),
	}
}

// Mode reports the store's deduction mode.
func (s *Store) Mode() Mode { return s.mode }

// Len returns the number of distinct recorded facts (matches plus
// non-matches).
func (s *Store) Len() int { return s.matches.Len() + s.nonmatches.Len() }

// Stats returns the current monotonic counters. Safe to call
// concurrently with Record/Lookup on other goroutines.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Unions:    s.unions.Load(),
		Conflicts: s.conflictN.Load(),
	}
}

// find returns the canonical root of n without mutating the forest
// (nodes never recorded are their own roots).
func (s *Store) find(n node) node {
	for {
		p, ok := s.parent[n]
		if !ok || p == n {
			return n
		}
		n = p
	}
}

// compress re-points every node on n's chain directly at root. Called
// only from Record, which already holds mutation rights.
func (s *Store) compress(n, root node) {
	for n != root {
		p, ok := s.parent[n]
		if !ok {
			break
		}
		s.parent[n] = root
		n = p
	}
}

// Record adds one confirmed answer. v must be Match or NonMatch.
// Re-recording a fact the store already holds (or that is already
// implied) is a no-op. If the fact contradicts the store, Record
// returns a *ConflictError and leaves the store untouched.
func (s *Store) Record(p pair.Pair, v Verdict) error {
	a, b := leftNode(int32(p.U1)), rightNode(int32(p.U2))
	ra, rb := s.find(a), s.find(b)

	switch v {
	case Match:
		return s.recordMatch(p, a, b, ra, rb)
	case NonMatch:
		return s.recordNonMatch(p, a, b, ra, rb)
	default:
		return fmt.Errorf("deduce: Record(%v) needs Match or NonMatch, got %s", p, v)
	}
}

func (s *Store) recordMatch(p pair.Pair, a, b, ra, rb node) error {
	// Validate fully before any mutation so a conflict leaves the
	// store byte-identical (asserted by the fuzz harness).
	if ra != rb {
		if wit, ok := s.conflicts[ra][rb]; ok {
			return &ConflictError{Pair: p, Verdict: Match, Witness: s.separationChain(a, b, wit)}
		}
		if s.mode == OneToOne {
			// Merging must not give any entity a second partner: b's
			// cluster may not already hold a U1 entity (b is matched
			// elsewhere), nor a's cluster a U2 entity.
			if l := s.sideOf(rb, 0); l >= 0 {
				return &ConflictError{Pair: p, Verdict: Match, Witness: s.matchChain(l, b)}
			}
			if r := s.sideOf(ra, 1); r >= 0 {
				return &ConflictError{Pair: p, Verdict: Match, Witness: s.matchChain(a, r)}
			}
		}
	}

	if s.matches.Has(p) {
		return nil
	}
	s.matches.Add(p)
	s.adj[a] = append(s.adj[a], edge{to: b, via: p})
	s.adj[b] = append(s.adj[b], edge{to: a, via: p})
	if ra == rb {
		return nil // already same cluster; edge kept for provenance
	}

	// Union with canonical min root, then fold rb-side conflict edges
	// into the new root, keeping the minimal witness per cluster pair.
	root, other := ra, rb
	if other < root {
		root, other = other, root
	}
	s.parent[other] = root
	if _, ok := s.parent[root]; !ok {
		s.parent[root] = root
	}
	s.compress(a, root)
	s.compress(b, root)
	s.unions.Add(1)

	merged := mergeSides(s.sides(ra), s.sides(rb))
	merged = mergeSides(merged, sidesOf(a))
	merged = mergeSides(merged, sidesOf(b))
	delete(s.sideMin, other)
	s.sideMin[root] = merged

	if moved := s.conflicts[other]; moved != nil {
		delete(s.conflicts, other)
		for peer, wit := range moved {
			delete(s.conflicts[peer], other)
			s.linkConflict(root, peer, wit, false)
		}
	}
	return nil
}

func (s *Store) recordNonMatch(p pair.Pair, a, b, ra, rb node) error {
	if ra == rb {
		return &ConflictError{Pair: p, Verdict: NonMatch, Witness: s.matchChain(a, b)}
	}
	if s.nonmatches.Has(p) {
		return nil
	}
	s.nonmatches.Add(p)
	s.linkConflict(ra, rb, p, true)
	// Nodes only named by non-matches still need to exist as roots so
	// later unions fold their conflict edges correctly.
	for _, n := range [2]node{a, b} {
		if _, ok := s.parent[n]; !ok {
			s.parent[n] = n
			s.sideMin[n] = sidesOf(n)
		}
	}
	return nil
}

// linkConflict installs (or tightens) the conflict edge between two
// cluster roots, keeping the lexicographically minimal witness. count
// distinguishes brand-new recorded edges from edges folded by a union.
func (s *Store) linkConflict(ra, rb node, wit pair.Pair, count bool) {
	fresh := false
	for _, dir := range [2][2]node{{ra, rb}, {rb, ra}} {
		m := s.conflicts[dir[0]]
		if m == nil {
			m = make(map[node]pair.Pair)
			s.conflicts[dir[0]] = m
		}
		if old, ok := m[dir[1]]; !ok || wit.Less(old) {
			if !ok {
				fresh = true
			}
			m[dir[1]] = wit
		}
	}
	if fresh && count {
		s.conflictN.Add(1)
	}
}

// noSides is the sideMin value of a cluster with no known members.
var noSides = [2]node{-1, -1}

// sides returns the per-side minimum members of the cluster rooted at
// root; a root never recorded has none (the node itself only joins the
// bookkeeping once a fact names it).
func (s *Store) sides(root node) [2]node {
	if v, ok := s.sideMin[root]; ok {
		return v
	}
	return noSides
}

// sideOf returns the cluster's minimum member on side (0 = U1,
// 1 = U2), or -1 when it has none.
func (s *Store) sideOf(root node, side int) node { return s.sides(root)[side] }

// mergeSides combines two side-minimum vectors, keeping per-side
// minima (-1 means absent).
func mergeSides(a, b [2]node) [2]node {
	for i := range a {
		if a[i] < 0 || (b[i] >= 0 && b[i] < a[i]) {
			a[i] = b[i]
		}
	}
	return a
}

// sidesOf is the side vector of a single node.
func sidesOf(n node) [2]node {
	v := noSides
	v[n&1] = n
	return v
}

// Lookup reports the verdict the recorded answers imply for p, with a
// provenance chain: recorded pairs whose conjunction yields the
// verdict. For Match the chain is a path of recorded matches from p.U1
// to p.U2; for NonMatch it is a match path, one recorded non-match,
// and a second match path (either path may be empty); under OneToOne
// it may instead be the chain matching one endpoint elsewhere. The
// chain is nil when the verdict is Unknown.
func (s *Store) Lookup(p pair.Pair) (Verdict, []pair.Pair) {
	a, b := leftNode(int32(p.U1)), rightNode(int32(p.U2))
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		s.hits.Add(1)
		return Match, s.matchChain(a, b)
	}
	if wit, ok := s.conflicts[ra][rb]; ok {
		s.hits.Add(1)
		return NonMatch, s.separationChain(a, b, wit)
	}
	if s.mode == OneToOne {
		if m := s.sideOf(ra, 1); m >= 0 { // p.U1 already matched to some U2
			s.hits.Add(1)
			return NonMatch, s.matchChain(a, m)
		}
		if m := s.sideOf(rb, 0); m >= 0 { // p.U2 already matched to some U1
			s.hits.Add(1)
			return NonMatch, s.matchChain(b, m)
		}
	}
	return Unknown, nil
}

// matchChain returns the recorded pairs along a deterministic shortest
// path of match edges from x to y (empty when x == y). Both must lie
// in the same cluster.
func (s *Store) matchChain(x, y node) []pair.Pair {
	if x == y {
		return nil
	}
	// BFS with sorted neighbor expansion: the discovered path is the
	// shortest, ties broken toward smaller nodes, so provenance is a
	// function of the recorded edge set only.
	type step struct {
		from node
		via  pair.Pair
	}
	prev := map[node]step{x: {from: x}}
	frontier := []node{x}
	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			out := append([]edge(nil), s.adj[n]...)
			sort.Slice(out, func(i, j int) bool {
				if out[i].to != out[j].to {
					return out[i].to < out[j].to
				}
				return out[i].via.Less(out[j].via)
			})
			for _, e := range out {
				if _, seen := prev[e.to]; seen {
					continue
				}
				prev[e.to] = step{from: n, via: e.via}
				if e.to == y {
					var chain []pair.Pair
					for at := y; at != x; at = prev[at].from {
						chain = append(chain, prev[at].via)
					}
					for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
						chain[i], chain[j] = chain[j], chain[i]
					}
					return chain
				}
				next = append(next, e.to)
			}
		}
		frontier = next
	}
	return nil
}

// separationChain builds the NonMatch provenance for nodes a, b in
// distinct clusters separated by the recorded non-match wit: the match
// path from a to wit's endpoint in a's cluster, wit itself, then the
// match path from wit's other endpoint to b.
func (s *Store) separationChain(a, b node, wit pair.Pair) []pair.Pair {
	wa, wb := leftNode(int32(wit.U1)), rightNode(int32(wit.U2))
	if s.find(wa) != s.find(a) {
		wa, wb = wb, wa
	}
	chain := s.matchChain(a, wa)
	chain = append(chain, wit)
	return append(chain, s.matchChain(wb, b)...)
}

// Snapshot is a canonical, order-independent dump of the store's
// state: the cluster partition plus the recorded fact sets. Two stores
// fed the same facts in any order produce identical Snapshots
// (asserted by the property suite), and a failed Record leaves the
// Snapshot unchanged (asserted by the fuzz harness).
type Snapshot struct {
	// Clusters lists every multi-node cluster as its sorted node keys,
	// ordered by first element.
	Clusters [][]int64
	// Matches and NonMatches are the recorded facts, sorted.
	Matches    []pair.Pair
	NonMatches []pair.Pair
}

// Snapshot captures the store's canonical state. It is O(n log n) in
// recorded nodes and intended for tests and debugging, not hot paths.
func (s *Store) Snapshot() Snapshot {
	groups := make(map[node][]int64)
	for n := range s.parent {
		r := s.find(n)
		groups[r] = append(groups[r], int64(n))
	}
	roots := make([]node, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	var clusters [][]int64
	for _, r := range roots {
		members := groups[r]
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		clusters = append(clusters, members)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	return Snapshot{
		Clusters:   clusters,
		Matches:    s.matches.Sorted(),
		NonMatches: s.nonmatches.Sorted(),
	}
}

// Equal reports whether two snapshots are identical.
func (a Snapshot) Equal(b Snapshot) bool {
	if len(a.Clusters) != len(b.Clusters) ||
		len(a.Matches) != len(b.Matches) ||
		len(a.NonMatches) != len(b.NonMatches) {
		return false
	}
	for i := range a.Clusters {
		if len(a.Clusters[i]) != len(b.Clusters[i]) {
			return false
		}
		for j := range a.Clusters[i] {
			if a.Clusters[i][j] != b.Clusters[i][j] {
				return false
			}
		}
	}
	for i := range a.Matches {
		if a.Matches[i] != b.Matches[i] {
			return false
		}
	}
	for i := range a.NonMatches {
		if a.NonMatches[i] != b.NonMatches[i] {
			return false
		}
	}
	return true
}
