package strsim

import (
	"strconv"
	"strings"
)

// LitID is a dense interned literal identifier within one Corpus.
type LitID uint32

// Corpus interns attribute-value literals and caches everything
// LiteralSimilarity would otherwise recompute per comparison: the literal's
// kind, its parsed numeric/date value, and its sorted dense-token-ID set.
// The batched pre-pipeline interns each distinct literal once per KB pair
// and then scores millions of literal comparisons on integers and cached
// floats. Corpus similarities are byte-identical to the string-based
// functions: interning is a bijection, so every set size, intersection
// size and parsed value — the only inputs to the float math — is the same.
//
// A Corpus is safe for concurrent reads once interning finishes; Intern
// calls must not race with anything.
type Corpus struct {
	idx    map[string]LitID
	kinds  []LiteralKind
	nums   []float64 // parsed value for KindNumber/KindDate literals
	toks   [][]uint32
	tokIdx map[string]uint32
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{idx: make(map[string]LitID), tokIdx: make(map[string]uint32)}
}

// Intern returns the ID of lit, classifying, parsing and tokenizing it on
// first sight.
func (c *Corpus) Intern(lit string) LitID {
	if id, ok := c.idx[lit]; ok {
		return id
	}
	id := LitID(len(c.kinds))
	c.idx[lit] = id
	kind := Classify(lit)
	var num float64
	switch kind {
	case KindNumber:
		num, _ = strconv.ParseFloat(strings.TrimSpace(lit), 64)
	case KindDate:
		num, _ = parseDate(strings.TrimSpace(lit))
	}
	c.kinds = append(c.kinds, kind)
	c.nums = append(c.nums, num)
	c.toks = append(c.toks, c.internTokens(lit))
	return id
}

// InternAll interns every literal in vals, returning their IDs.
func (c *Corpus) InternAll(vals []string) []LitID {
	if len(vals) == 0 {
		return nil
	}
	out := make([]LitID, len(vals))
	for i, v := range vals {
		out[i] = c.Intern(v)
	}
	return out
}

// Len returns the number of interned literals.
func (c *Corpus) Len() int { return len(c.kinds) }

// internTokens maps TokenSet(lit) through the corpus token dictionary and
// returns the IDs sorted ascending. Sorting by ID instead of by string is
// a different permutation of the same set, so every intersection size —
// the only thing downstream math reads — is unchanged.
func (c *Corpus) internTokens(lit string) []uint32 {
	set := TokenSet(lit)
	if len(set) == 0 {
		return nil
	}
	ids := make([]uint32, len(set))
	for i, t := range set {
		id, ok := c.tokIdx[t]
		if !ok {
			id = uint32(len(c.tokIdx))
			c.tokIdx[t] = id
		}
		ids[i] = id
	}
	sortUint32(ids)
	return ids
}

func sortUint32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// LiteralSim is LiteralSimilarity over interned literals: same-kind
// numbers and dates compare by maximum percentage difference on the cached
// parsed values; everything else compares by Jaccard over the cached token
// sets. Byte-identical to LiteralSimilarity on the original strings.
//
//remp:hotpath
func (c *Corpus) LiteralSim(a, b LitID) float64 {
	ka, kb := c.kinds[a], c.kinds[b]
	if ka == kb && ka != KindString {
		return NumberSimilarity(c.nums[a], c.nums[b])
	}
	return JaccardIDs(c.toks[a], c.toks[b])
}

// SimL is the extended Jaccard similarity over interned literal sets,
// byte-identical to SimL on the original value slices (same greedy
// pairing order, same tie-breaking, same early exit on an exact match).
// The used scratch comes from the caller's MatchScratch (one per worker);
// after warm-up the call is allocation-free.
//
//remp:hotpath
func (c *Corpus) SimL(va, vb []LitID, threshold float64, sc *MatchScratch) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	used := sc.boolRow(len(vb))
	matched := 0
	for _, la := range va {
		best, bestSim := -1, threshold
		for j, lb := range vb {
			if used[j] {
				continue
			}
			if s := c.LiteralSim(la, lb); s >= bestSim {
				best, bestSim = j, s
				if s == 1 {
					break
				}
			}
		}
		if best >= 0 {
			used[best] = true
			matched++
		}
	}
	union := len(va) + len(vb) - matched
	if union == 0 {
		return 0
	}
	return float64(matched) / float64(union)
}

// MatchScratch holds the pooled used-flags SimL works in. The zero value
// is ready; reuse one scratch per worker. Not safe for concurrent use.
type MatchScratch struct {
	used []bool
}

//remp:hotpath
func (sc *MatchScratch) boolRow(n int) []bool {
	if cap(sc.used) < n {
		sc.used = make([]bool, n)
	}
	sc.used = sc.used[:n]
	for i := range sc.used {
		sc.used[i] = false
	}
	return sc.used
}
