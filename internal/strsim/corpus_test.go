package strsim

import (
	"math/rand"
	"testing"
)

// hostileLiterals spans every Classify kind plus edge cases: numbers with
// whitespace, dates in all accepted shapes, near-dates that fall back to
// strings, unicode text and empties.
var hostileLiterals = []string{
	"", " ", "hello world", "Hello, World!", "the running cities",
	"42", " 42 ", "-3.14", "3.14", "0", "1e3", "0.0001",
	"1999", "2001-05-03", "2001/05/03", "2001-5-3", "1984",
	"2001-13-03", "0000", "12345", "99-99-99",
	"café au lait", "北京 市", "naïve — résumé", "🦀 crab", "O'Neill",
	"same same same", "a b c d e f", "ALLCAPS TEXT",
}

func randLiteral(r *rand.Rand) string {
	return hostileLiterals[r.Intn(len(hostileLiterals))]
}

func randLiteralSet(r *rand.Rand, max int) []string {
	n := r.Intn(max + 1)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, randLiteral(r))
	}
	return out
}

// TestCorpusLiteralSimMatches: interned literal similarity is
// byte-identical to LiteralSimilarity on the raw strings.
func TestCorpusLiteralSimMatches(t *testing.T) {
	c := NewCorpus()
	ids := make([]LitID, len(hostileLiterals))
	for i, lit := range hostileLiterals {
		ids[i] = c.Intern(lit)
	}
	for i, a := range hostileLiterals {
		for j, b := range hostileLiterals {
			want := LiteralSimilarity(a, b)
			got := c.LiteralSim(ids[i], ids[j])
			if got != want {
				t.Fatalf("LiteralSim(%q, %q) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestCorpusSimLMatches: the batched simL over interned sets reproduces
// SimL exactly — same greedy pairing, same floats — across randomized
// value sets and thresholds.
func TestCorpusSimLMatches(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	c := NewCorpus()
	var sc MatchScratch
	for i := 0; i < 3000; i++ {
		va := randLiteralSet(r, 5)
		vb := randLiteralSet(r, 5)
		threshold := float64(r.Intn(11)) / 10
		want := SimL(va, vb, threshold)
		got := c.SimL(c.InternAll(va), c.InternAll(vb), threshold, &sc)
		if got != want {
			t.Fatalf("Corpus SimL(%q, %q, %v) = %v, want %v", va, vb, threshold, got, want)
		}
	}
}

// TestCorpusInternIdempotent: re-interning returns the same ID.
func TestCorpusInternIdempotent(t *testing.T) {
	c := NewCorpus()
	a := c.Intern("hello world")
	b := c.Intern("other")
	if c.Intern("hello world") != a || c.Intern("other") != b {
		t.Fatal("re-interning changed IDs")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}
