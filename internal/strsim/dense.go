package strsim

// Dense-ID similarity kernels. The indexed pre-pipeline interns tokens to
// dense uint32 IDs once per KB load and calls these kernels per candidate
// pair; they are the per-pair inner loop of blocking at scale, so they
// follow the //remp:hotpath contract — no allocation, no maps, sorted
// slices and integer compares only. Equivalence with the string-set
// measures is exact: interning is a bijection on the token strings, so
// set sizes and intersection sizes — the only inputs to the coefficients
// — are identical, and the float math is byte-for-byte the same.

// IntersectionSizeIDs returns |a ∩ b| for ascending []uint32 token sets.
//
//remp:hotpath
func IntersectionSizeIDs(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// JaccardIDs returns |a∩b| / |a∪b| for ascending dense token-ID sets,
// byte-identical to Jaccard over the equivalent sorted string sets.
//
//remp:hotpath
func JaccardIDs(a, b []uint32) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := IntersectionSizeIDs(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// JaccardUpperBound returns the largest Jaccard similarity any pair of
// sets with the given sizes can reach: min/max (attained when the smaller
// set is contained in the larger). Blocking uses it as a length-bucket
// prefilter: when the bound is already below the threshold the
// intersection is never computed. Because IEEE division is correctly
// rounded (hence monotone in the exact numerator and denominator), the
// returned float is ≥ the float JaccardIDs would compute for any
// realizable intersection, so filtering on it can never drop a pair the
// exact comparison would keep.
//
//remp:hotpath
func JaccardUpperBound(la, lb int) float64 {
	if la == 0 || lb == 0 {
		return 0
	}
	if la > lb {
		la, lb = lb, la
	}
	return float64(la) / float64(lb)
}

// LevenshteinBounded returns the edit distance between a and b when it is
// at most bound, and bound+1 otherwise. It runs the same two-row DP as
// Levenshtein restricted to the |i−j| ≤ bound diagonal band, with an
// early exit as soon as a whole row exceeds the bound, so far-apart
// strings cost O(bound·len) instead of O(len²). Rows and rune buffers
// come from the caller's EditScratch (one per worker); after warm-up the
// call is allocation-free.
func LevenshteinBounded(a, b string, bound int, sc *EditScratch) int {
	if bound < 0 {
		bound = 0
	}
	ra := sc.runes(a, 0)
	rb := sc.runes(b, 1)
	// Edit distance is symmetric; keep rb the shorter side so the rows
	// (and the band clamp) run over the smaller length.
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	inf := bound + 1
	if len(ra)-len(rb) > bound {
		return inf
	}
	if len(rb) == 0 {
		return len(ra) // ≤ bound by the length check above
	}
	prev := sc.row(len(rb)+1, 0)
	cur := sc.row(len(rb)+1, 1)
	for j := 0; j <= len(rb) && j <= bound; j++ {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		lo, hi := i-bound, i+bound
		if lo < 1 {
			lo = 1
		}
		if hi > len(rb) {
			hi = len(rb)
		}
		if lo == 1 {
			cur[0] = i // i ≤ bound here, since lo = i-bound < 1
		} else {
			cur[lo-1] = inf // left band edge acts as +∞
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost // substitution / match
			if d := cur[j-1] + 1; d < m {
				m = d // insertion
			}
			if j <= i-1+bound { // prev[j] lies inside the previous row's band
				if d := prev[j] + 1; d < m {
					m = d // deletion
				}
			}
			if m > inf {
				m = inf
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin >= inf {
			return inf
		}
		prev, cur = cur, prev
	}
	if d := prev[len(rb)]; d <= bound {
		return d
	}
	return inf
}

// EditSimilarityBounded is EditSimilarity computed through
// LevenshteinBounded: it returns the exact edit similarity when it is at
// least minSim, and (s, false) with s an upper bound otherwise. Callers
// scanning many candidates for high-similarity strings skip the full DP
// on everything far away.
func EditSimilarityBounded(a, b string, minSim float64, sc *EditScratch) (float64, bool) {
	la, lb := 0, 0
	for range a {
		la++
	}
	for range b {
		lb++
	}
	if la == 0 && lb == 0 {
		return 1, 1 >= minSim
	}
	m := la
	if lb > m {
		m = lb
	}
	// sim ≥ minSim  ⇔  distance ≤ (1−minSim)·m; bound the DP there.
	bound := int((1 - minSim) * float64(m))
	if bound > m {
		bound = m
	}
	d := LevenshteinBounded(a, b, bound, sc)
	sim := 1 - float64(d)/float64(m)
	if d > bound {
		return sim, false // sim is an upper bound, not the exact value
	}
	return sim, true
}

// EditScratch holds the pooled rows and rune buffers LevenshteinBounded
// works in. The zero value is ready to use; reuse one scratch per worker
// to amortize all allocation away (growth is len/cap-guarded). Not safe
// for concurrent use.
type EditScratch struct {
	rows  [2][]int
	runeA []rune
	runeB []rune
}

func (sc *EditScratch) row(n, which int) []int {
	if cap(sc.rows[which]) < n {
		sc.rows[which] = make([]int, n)
	}
	sc.rows[which] = sc.rows[which][:n]
	return sc.rows[which]
}

func (sc *EditScratch) runes(s string, which int) []rune {
	buf := sc.runeA
	if which == 1 {
		buf = sc.runeB
	}
	buf = buf[:0]
	for _, r := range s {
		buf = append(buf, r)
	}
	if which == 1 {
		sc.runeB = buf
	} else {
		sc.runeA = buf
	}
	return buf
}
