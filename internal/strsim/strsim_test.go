package strsim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Hello, World!", "hello world"},
		{"  Leading & trailing  ", "leading trailing"},
		{"CamelCase-Hyphenated_underscore", "camelcase hyphenated underscore"},
		{"", ""},
		{"!!!", ""},
		{"Émile Zola", "émile zola"},
		{"a1b2", "a1b2"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenizeAndStem(t *testing.T) {
	got := Tokenize("The Movies were directed")
	want := []string{"the", "movy", "were", "direct"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStem(t *testing.T) {
	cases := []struct{ in, want string }{
		{"cities", "city"},
		{"classes", "class"},
		{"movies", "movy"}, // light stemmer: -ies → -y
		{"running", "runn"},
		{"directed", "direct"},
		{"cats", "cat"},
		{"pass", "pass"},
		{"bus", "bus"},
		{"sun", "sun"}, // too short
		{"is", "is"},
	}
	for _, c := range cases {
		if got := Stem(c.in); got != c.want {
			t.Errorf("Stem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenSetSortedUnique(t *testing.T) {
	set := TokenSet("b a b c a")
	want := []string{"a", "b", "c"}
	if len(set) != 3 {
		t.Fatalf("TokenSet = %v", set)
	}
	for i := range want {
		if set[i] != want[i] {
			t.Errorf("set[%d] = %q, want %q", i, set[i], want[i])
		}
	}
}

func TestJaccard(t *testing.T) {
	a := TokenSet("joan crawford")
	b := TokenSet("joan crawford")
	if got := Jaccard(a, b); got != 1 {
		t.Errorf("identical sets: Jaccard = %v, want 1", got)
	}
	c := TokenSet("john wayne")
	if got := Jaccard(a, c); got != 0 {
		t.Errorf("disjoint sets: Jaccard = %v, want 0", got)
	}
	d := TokenSet("joan wayne")
	// intersection {joan}, union {joan, crawford, wayne}
	if got := Jaccard(a, d); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(nil, a); got != 0 {
		t.Errorf("empty vs nonempty: Jaccard = %v, want 0", got)
	}
}

func TestDiceCosineOverlap(t *testing.T) {
	a := []string{"a", "b"}
	b := []string{"b", "c", "d"}
	if got := Dice(a, b); math.Abs(got-2.0/5.0) > 1e-12 {
		t.Errorf("Dice = %v, want 0.4", got)
	}
	if got := Cosine(a, b); math.Abs(got-1/math.Sqrt(6)) > 1e-9 {
		t.Errorf("Cosine = %v, want %v", got, 1/math.Sqrt(6))
	}
	if got := Overlap(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"same", "same", 0},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity("", ""); got != 1 {
		t.Errorf("empty strings: got %v, want 1", got)
	}
	if got := EditSimilarity("abc", "abc"); got != 1 {
		t.Errorf("equal strings: got %v, want 1", got)
	}
	if got := EditSimilarity("abc", "xyz"); got != 0 {
		t.Errorf("disjoint strings: got %v, want 0", got)
	}
}

func TestNumberSimilarity(t *testing.T) {
	if got := NumberSimilarity(100, 90); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("NumberSimilarity(100,90) = %v, want 0.9", got)
	}
	if got := NumberSimilarity(0, 0); got != 1 {
		t.Errorf("NumberSimilarity(0,0) = %v, want 1", got)
	}
	if got := NumberSimilarity(-5, 5); got != 0 {
		t.Errorf("NumberSimilarity(-5,5) = %v, want 0", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   string
		want LiteralKind
	}{
		{"3.14", KindNumber},
		{"-42", KindNumber},
		{"1452-04-15", KindDate},
		{"1999/12/31", KindDate},
		{"1984", KindNumber}, // bare integers parse as numbers first
		{"Mona Lisa", KindString},
		{"G44.847", KindString},
		{"", KindString},
	}
	for _, c := range cases {
		if got := Classify(c.in); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLiteralSimilarityDates(t *testing.T) {
	if got := LiteralSimilarity("1452-04-15", "1452-04-15"); got != 1 {
		t.Errorf("identical dates: got %v, want 1", got)
	}
	near := LiteralSimilarity("1990-01-01", "1990-01-02")
	if near < 0.999 {
		t.Errorf("adjacent dates should be nearly identical, got %v", near)
	}
	far := LiteralSimilarity("1452-04-15", "1990-01-01")
	if far >= near {
		t.Errorf("far dates (%v) should be less similar than near dates (%v)", far, near)
	}
}

func TestLiteralSimilarityMixedKinds(t *testing.T) {
	// A number vs a string falls back to token Jaccard.
	if got := LiteralSimilarity("42", "42"); got != 1 {
		t.Errorf("same numeric strings: got %v, want 1", got)
	}
	if got := LiteralSimilarity("42", "forty two"); got != 0 {
		t.Errorf("number vs words: got %v, want 0", got)
	}
}

func TestSimL(t *testing.T) {
	a := []string{"alpha", "beta"}
	b := []string{"alpha", "beta"}
	if got := SimL(a, b, 0.9); got != 1 {
		t.Errorf("identical literal sets: got %v, want 1", got)
	}
	c := []string{"alpha"}
	// pairing {alpha}, union size 2 ⇒ 1/2
	if got := SimL(a, c, 0.9); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("subset literal sets: got %v, want 0.5", got)
	}
	if got := SimL(nil, a, 0.9); got != 0 {
		t.Errorf("empty vs nonempty: got %v, want 0", got)
	}
	if got := SimL(nil, nil, 0.9); got != 0 {
		t.Errorf("both empty: got %v, want 0", got)
	}
}

func TestSimLThreshold(t *testing.T) {
	a := []string{"jonathan smith"}
	b := []string{"jonathan smyth"}
	// Token Jaccard between these is 1/3 < 0.9, so no pairing at 0.9...
	if got := SimL(a, b, 0.9); got != 0 {
		t.Errorf("below-threshold literals should not pair: got %v", got)
	}
	// ...but they pair at a permissive threshold.
	if got := SimL(a, b, 0.3); got <= 0 {
		t.Errorf("above-threshold literals should pair: got %v", got)
	}
}

// Property: Jaccard is symmetric, bounded in [0,1], and 1 iff sets equal.
func TestJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := bytesToSet(xs)
		b := bytesToSet(ys)
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		if j1 != j2 {
			return false
		}
		if j1 < 0 || j1 > 1 {
			return false
		}
		if len(a) > 0 && equalSets(a, b) && j1 != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein is a metric (symmetry, identity, triangle
// inequality) on random short strings.
func TestLevenshteinMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(8)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('a' + rng.Intn(4)))
		}
		return sb.String()
	}
	for i := 0; i < 200; i++ {
		a, b, c := randStr(), randStr(), randStr()
		dab, dba := Levenshtein(a, b), Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("symmetry violated: d(%q,%q)=%d, d(%q,%q)=%d", a, b, dab, b, a, dba)
		}
		if Levenshtein(a, a) != 0 {
			t.Fatalf("identity violated for %q", a)
		}
		if dab > Levenshtein(a, c)+Levenshtein(c, b) {
			t.Fatalf("triangle inequality violated: a=%q b=%q c=%q", a, b, c)
		}
	}
}

// Property: EditSimilarity and NumberSimilarity stay in [0,1].
func TestSimilarityBounds(t *testing.T) {
	f := func(a, b string, x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		es := EditSimilarity(a, b)
		ns := NumberSimilarity(x, y)
		return es >= 0 && es <= 1 && ns >= 0 && ns <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func bytesToSet(xs []uint8) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, x := range xs {
		s := string(rune('a' + x%16))
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			out = append(out, s)
		}
	}
	insertionSort(out)
	return out
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
