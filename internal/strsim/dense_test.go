package strsim

import (
	"fmt"
	"math/rand"
	"testing"
)

var denseStrings = []string{
	"", "a", "ab", "abc", "abcd", "kitten", "sitting", "flaw", "lawn",
	"café", "cafe", "naïve", "naive", "北京", "北京市", "東京都", "🦀🦀", "🦀",
	"supercalifragilistic", "supercalifragilistiX",
	"aaaaaaaaaa", "aaaaabaaaa", "identical", "identical",
}

func randDenseString(r *rand.Rand) string {
	alphabet := []rune("abcdé北🦀")
	n := r.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(out)
}

// TestLevenshteinBoundedMatchesFull: for any bound, the banded DP returns
// the exact distance when it is within the bound and bound+1 otherwise.
func TestLevenshteinBoundedMatchesFull(t *testing.T) {
	var sc EditScratch
	check := func(a, b string, bound int) {
		t.Helper()
		full := Levenshtein(a, b)
		got := LevenshteinBounded(a, b, bound, &sc)
		want := full
		if full > bound {
			want = bound + 1
		}
		if got != want {
			t.Fatalf("LevenshteinBounded(%q, %q, %d) = %d, want %d (full %d)", a, b, bound, got, want, full)
		}
	}
	for _, a := range denseStrings {
		for _, b := range denseStrings {
			for bound := 0; bound <= 8; bound++ {
				check(a, b, bound)
			}
			check(a, b, 100)
		}
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := randDenseString(r), randDenseString(r)
		check(a, b, r.Intn(10))
	}
}

// TestEditSimilarityBounded: exact when reported exact, an upper bound
// otherwise; the exact value must be byte-identical to EditSimilarity.
func TestEditSimilarityBounded(t *testing.T) {
	var sc EditScratch
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		a, b := randDenseString(r), randDenseString(r)
		minSim := float64(r.Intn(11)) / 10
		full := EditSimilarity(a, b)
		got, exact := EditSimilarityBounded(a, b, minSim, &sc)
		if exact {
			if got != full {
				t.Fatalf("EditSimilarityBounded(%q, %q, %v) exact %v != EditSimilarity %v", a, b, minSim, got, full)
			}
		} else {
			if got < full {
				t.Fatalf("EditSimilarityBounded(%q, %q, %v) bound %v below true %v", a, b, minSim, got, full)
			}
			if full >= minSim {
				t.Fatalf("EditSimilarityBounded(%q, %q, %v) gave up although true sim %v >= minSim", a, b, minSim, full)
			}
		}
	}
}

// TestJaccardIDsMatchesStrings: interning token sets to dense IDs leaves
// the Jaccard float byte-identical.
func TestJaccardIDsMatchesStrings(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		na, nb := r.Intn(8), r.Intn(8)
		la := make([]string, 0, na)
		lb := make([]string, 0, nb)
		for j := 0; j < na; j++ {
			la = append(la, fmt.Sprintf("t%d", r.Intn(10)))
		}
		for j := 0; j < nb; j++ {
			lb = append(lb, fmt.Sprintf("t%d", r.Intn(10)))
		}
		sa, sb := TokenSet(joinSpace(la)), TokenSet(joinSpace(lb))
		dict := map[string]uint32{}
		intern := func(set []string) []uint32 {
			if len(set) == 0 {
				return nil
			}
			ids := make([]uint32, len(set))
			for i, s := range set {
				id, ok := dict[s]
				if !ok {
					id = uint32(len(dict))
					dict[s] = id
				}
				ids[i] = id
			}
			sortUint32(ids)
			return ids
		}
		ia, ib := intern(sa), intern(sb)
		if got, want := JaccardIDs(ia, ib), Jaccard(sa, sb); got != want {
			t.Fatalf("JaccardIDs %v != Jaccard %v for %v vs %v", got, want, sa, sb)
		}
		if ub := JaccardUpperBound(len(ia), len(ib)); ub < JaccardIDs(ia, ib) {
			t.Fatalf("JaccardUpperBound %v below actual %v", ub, JaccardIDs(ia, ib))
		}
	}
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
