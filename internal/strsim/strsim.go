// Package strsim provides the string normalization and similarity measures
// used throughout the Remp pipeline: label tokenization with stemming,
// Jaccard/Dice/cosine/overlap coefficients on token sets, Levenshtein edit
// similarity, numeric and date similarity by maximum percentage difference,
// and the extended Jaccard measure simL over sets of literals (Naumann &
// Herschel, "An Introduction to Duplicate Detection").
//
// All functions are pure and safe for concurrent use.
package strsim

import (
	"strconv"
	"strings"
	"unicode"
)

// Normalize lowercases s, replaces punctuation with spaces and collapses
// runs of whitespace. It is the first step of label preprocessing described
// in §IV-B of the paper.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	prevSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			prevSpace = false
		default:
			if !prevSpace {
				b.WriteByte(' ')
				prevSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokenize normalizes s and splits it into tokens, applying light stemming
// to each token. The result preserves token order and may contain
// duplicates; use TokenSet for the deduplicated form.
func Tokenize(s string) []string {
	norm := Normalize(s)
	if norm == "" {
		return nil
	}
	fields := strings.Fields(norm)
	out := fields[:0]
	for _, f := range fields {
		if t := Stem(f); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// TokenSet returns the deduplicated, sorted token set of s.
func TokenSet(s string) []string {
	toks := Tokenize(s)
	if len(toks) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(toks))
	set := make([]string, 0, len(toks))
	for _, t := range toks {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		set = append(set, t)
	}
	insertionSort(set)
	return set
}

func insertionSort(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Stem applies a small suffix-stripping stemmer (a compact subset of
// Porter's rules sufficient for blocking): plural -s/-es/-ies, -ing, -ed.
// Tokens shorter than four runes are returned unchanged.
func Stem(token string) string {
	n := len(token)
	if n < 4 {
		return token
	}
	switch {
	case strings.HasSuffix(token, "ies") && n > 4:
		return token[:n-3] + "y"
	case strings.HasSuffix(token, "sses"):
		return token[:n-2]
	case strings.HasSuffix(token, "es") && n > 4:
		return token[:n-2]
	case strings.HasSuffix(token, "s") && !strings.HasSuffix(token, "ss") && !strings.HasSuffix(token, "us"):
		return token[:n-1]
	case strings.HasSuffix(token, "ing") && n > 5:
		return token[:n-3]
	case strings.HasSuffix(token, "ed") && n > 4:
		return token[:n-2]
	}
	return token
}

// intersectionSize returns |a ∩ b| for sorted string slices.
func intersectionSize(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Jaccard returns |a∩b| / |a∪b| for sorted token sets. Two empty sets have
// similarity 0 (entities without labels never block together).
func Jaccard(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns the Sørensen–Dice coefficient 2|a∩b| / (|a|+|b|).
func Dice(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	return 2 * float64(inter) / float64(len(a)+len(b))
}

// Cosine returns the set cosine similarity |a∩b| / sqrt(|a||b|).
func Cosine(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	return float64(inter) / sqrtf(float64(len(a))*float64(len(b)))
}

// Overlap returns the overlap coefficient |a∩b| / min(|a|,|b|).
func Overlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	return float64(inter) / float64(m)
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method; inputs are small set-size products so a few
	// iterations converge to machine precision.
	z := x
	for i := 0; i < 32; i++ {
		nz := 0.5 * (z + x/z)
		if nz == z {
			break
		}
		z = nz
	}
	return z
}

// Levenshtein returns the edit distance between a and b using two-row
// dynamic programming over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			sub := prev[j-1] + cost
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// EditSimilarity returns 1 − Levenshtein(a,b)/max(len(a),len(b)), a
// similarity in [0,1]. Two empty strings have similarity 1.
func EditSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// NumberSimilarity compares two numbers by maximum percentage difference:
// 1 − |x−y| / max(|x|,|y|), clamped to [0,1]. Both zero yields 1.
func NumberSimilarity(x, y float64) float64 {
	if x == y {
		return 1
	}
	ax, ay := x, y
	if ax < 0 {
		ax = -ax
	}
	if ay < 0 {
		ay = -ay
	}
	m := ax
	if ay > m {
		m = ay
	}
	if m == 0 {
		return 1
	}
	d := x - y
	if d < 0 {
		d = -d
	}
	s := 1 - d/m
	if s < 0 {
		return 0
	}
	return s
}

// LiteralKind classifies a literal for LiteralSimilarity dispatch.
type LiteralKind int

// Literal kinds recognized by Classify.
const (
	KindString LiteralKind = iota
	KindNumber
	KindDate
)

// Classify reports whether lit parses as a number, a date (YYYY-MM-DD or
// YYYY/MM/DD or bare year), or is plain text.
func Classify(lit string) LiteralKind {
	s := strings.TrimSpace(lit)
	if s == "" {
		return KindString
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return KindNumber
	}
	if _, ok := parseDate(s); ok {
		return KindDate
	}
	return KindString
}

// parseDate accepts YYYY-MM-DD, YYYY/MM/DD and YYYY, returning days since
// year 0 on success (a monotone encoding good enough for similarity).
func parseDate(s string) (float64, bool) {
	sep := byte('-')
	if strings.Count(s, "/") == 2 {
		sep = '/'
	} else if strings.Count(s, "-") != 2 {
		if len(s) == 4 {
			if y, err := strconv.Atoi(s); err == nil && y > 0 {
				return float64(y) * 365.2425, true
			}
		}
		return 0, false
	}
	parts := strings.Split(s, string(sep))
	if len(parts) != 3 {
		return 0, false
	}
	y, err1 := strconv.Atoi(parts[0])
	m, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, false
	}
	if y <= 0 || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, false
	}
	return float64(y)*365.2425 + float64(m-1)*30.44 + float64(d), true
}

// LiteralSimilarity compares two literals, dispatching on their kinds:
// Jaccard over token sets for strings, maximum percentage difference for
// numbers and dates (§IV-C). Mixed kinds compare as strings.
func LiteralSimilarity(a, b string) float64 {
	ka, kb := Classify(a), Classify(b)
	if ka == kb {
		switch ka {
		case KindNumber:
			x, _ := strconv.ParseFloat(strings.TrimSpace(a), 64)
			y, _ := strconv.ParseFloat(strings.TrimSpace(b), 64)
			return NumberSimilarity(x, y)
		case KindDate:
			x, _ := parseDate(strings.TrimSpace(a))
			y, _ := parseDate(strings.TrimSpace(b))
			return NumberSimilarity(x, y)
		}
	}
	return Jaccard(TokenSet(a), TokenSet(b))
}

// SimL is the extended Jaccard similarity over two sets of literals: the
// size of the "soft intersection" (greedy one-to-one pairing of literals
// whose internal similarity is at least threshold) divided by the size of
// the union under that pairing. This follows the duplicate-detection
// formulation referenced in §IV-C; the paper uses threshold 0.9.
func SimL(va, vb []string, threshold float64) float64 {
	if len(va) == 0 && len(vb) == 0 {
		return 0
	}
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	used := make([]bool, len(vb))
	matched := 0
	for _, la := range va {
		best, bestSim := -1, threshold
		for j, lb := range vb {
			if used[j] {
				continue
			}
			if s := LiteralSimilarity(la, lb); s >= bestSim {
				best, bestSim = j, s
				if s == 1 {
					break
				}
			}
		}
		if best >= 0 {
			used[best] = true
			matched++
		}
	}
	union := len(va) + len(vb) - matched
	if union == 0 {
		return 0
	}
	return float64(matched) / float64(union)
}
