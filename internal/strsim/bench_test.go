package strsim

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks anchoring the dense-ID fast paths against the retained
// string implementations; benchreport gates both so the indexed path's
// advantage (and its allocation profile) cannot silently erode.

func benchValues(n int) []string {
	rng := rand.New(rand.NewSource(7))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	vals := make([]string, n)
	for i := range vals {
		vals[i] = fmt.Sprintf("%s %s item%d", words[rng.Intn(len(words))], words[rng.Intn(len(words))], rng.Intn(n/2+1))
	}
	return vals
}

func BenchmarkSimLStrings(b *testing.B) {
	va, vb := benchValues(8), benchValues(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimL(va, vb, 0.5)
	}
}

func BenchmarkSimLCorpus(b *testing.B) {
	va, vb := benchValues(8), benchValues(8)
	c := NewCorpus()
	ia, ib := c.InternAll(va), c.InternAll(vb)
	var sc MatchScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SimL(ia, ib, 0.5, &sc)
	}
}

func BenchmarkLevenshteinFull(b *testing.B) {
	s, t := "relational match propagation", "relational batch propagation"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Levenshtein(s, t)
	}
}

func BenchmarkLevenshteinBounded(b *testing.B) {
	s, t := "relational match propagation", "relational batch propagation"
	var sc EditScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LevenshteinBounded(s, t, 5, &sc)
	}
}

func BenchmarkJaccardStrings(b *testing.B) {
	va := TokenSet("the quick brown fox jumps over the lazy dog")
	vb := TokenSet("the quick brown cat sleeps under the lazy dog")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(va, vb)
	}
}

func BenchmarkJaccardIDs(b *testing.B) {
	c := NewCorpus()
	ia := c.internTokens("the quick brown fox jumps over the lazy dog")
	ib := c.internTokens("the quick brown cat sleeps under the lazy dog")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JaccardIDs(ia, ib)
	}
}
