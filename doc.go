// Package repro is a from-scratch Go reproduction of "Crowdsourced
// Collective Entity Resolution with Relational Match Propagation" (Huang,
// Hu, Bao, Qu — ICDE 2020). The public API lives in package remp; the
// paper's pipeline, substrates, competitor baselines, synthetic datasets
// and experiment drivers live under internal/. The root package carries
// the benchmark suite (bench_test.go) that regenerates every table and
// figure of the paper's evaluation.
package repro
