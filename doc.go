// Package repro is a from-scratch Go reproduction of "Crowdsourced
// Collective Entity Resolution with Relational Match Propagation" (Huang,
// Hu, Bao, Qu — ICDE 2020). The public API lives in package remp; the
// paper's pipeline, substrates, competitor baselines, synthetic datasets
// and experiment drivers live under internal/. The root package carries
// the benchmark suite (bench_test.go) that regenerates every table and
// figure of the paper's evaluation.
//
// The human–machine loop is asynchronous at heart — µ questions are
// posted to a crowd platform and the answers trickle back out of order —
// so the loop is implemented as a resumable state machine rather than a
// blocking call: a session (remp.NewSession, internal/session) publishes
// question batches via NextBatch, accepts answers via Deliver in any
// order, applies them in selection order so the result is byte-identical
// to the synchronous remp.Resolve, and snapshots its answer log as JSON
// so it survives process restarts. A session manager runs many sessions
// concurrently and shares answers across the sessions of one dataset, so
// the crowd never sees the same pair twice. cmd/remp-server serves the
// whole lifecycle — create, batch, answers, result, snapshot, restore —
// over HTTP/JSON (internal/server), and examples/asynccrowd drives it
// end to end.
package repro
